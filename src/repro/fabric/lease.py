"""The cache-coordinated work-claiming protocol.

One small JSON file per cell under ``<cache_root>/leases/``, named
``<cache_key>.lease``.  The protocol has exactly three moves:

* **claim** — create the file with ``O_CREAT | O_EXCL``.  The
  filesystem arbitrates: exactly one racing worker wins, everyone else
  sees ``FileExistsError`` and moves on.
* **heartbeat** — the holder periodically rewrites the lease (atomic
  replace) with a fresh ``heartbeat_at``.  A lease whose heartbeat is
  older than the TTL is *stale*: its holder is presumed dead and any
  worker may take the lease over (again via atomic replace, so two
  racing stealers leave exactly one coherent winner on disk — the
  loser's write is simply overwritten, and the loser discovers it on
  the next :meth:`LeaseStore.refresh`).
* **release** — on success the holder replaces the lease with a
  ``done`` marker recording who computed the cell and how long it
  took; the marker is the fabric's provenance journal and is cleaned
  up by ``repro cache gc``.  On failure the holder deletes the lease
  so another worker can retry immediately.

Safety does **not** depend on the protocol: cells are deterministic
and published through the cache's atomic write, so the worst outcome
of any race (two holders after a partition, a stale TTL that was
merely slow) is the same bytes written twice.  The protocol only
exists to make duplicated work rare.

All timestamps *in the file* are wall-clock ``time.time()`` — leases
must be comparable across hosts sharing the cache directory; the TTL
is minutes-scale, so NTP-grade skew is irrelevant.  Staleness,
however, is never judged by wall clock alone: a backwards clock step
(NTP correction, VM resume) could otherwise pin a dead holder's lease
fresh forever.  Negative heartbeat ages clamp to zero, and each
:class:`LeaseStore` additionally remembers the **local monotonic**
instant it first observed every ``heartbeat_at`` value — a lease whose
heartbeat has not changed for a full TTL of monotonic time is stale no
matter what the wall clock says.  Both clocks are injectable for
tests.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import time
from pathlib import Path
from typing import Optional, Union

from ..errors import ReproError

__all__ = [
    "CLAIMED",
    "DONE",
    "DEFAULT_TTL_SECONDS",
    "Lease",
    "LeaseError",
    "LeaseStore",
]

#: Lease states on disk.
CLAIMED = "claimed"
DONE = "done"

#: Heartbeat age after which a claimed lease may be taken over.
DEFAULT_TTL_SECONDS = 60.0


class LeaseError(ReproError):
    """A lease file was unreadable or the store was misused."""


@dataclasses.dataclass(frozen=True)
class Lease:
    """One parsed lease file."""

    key: str
    status: str
    run_id: str
    worker_id: str
    pid: int
    host: str
    claimed_at: float
    heartbeat_at: float
    takeovers: int = 0
    wall_seconds: float = 0.0

    def age(self, now: float) -> float:
        """Seconds since the holder last heartbeat (never negative).

        A backwards wall-clock step can put ``heartbeat_at`` in the
        observer's future; a negative age clamps to zero so the lease
        reads *fresh* — the safe direction, since staleness grants
        takeover.  Liveness across clock steps is restored by
        :meth:`LeaseStore.observed_stale`'s monotonic observations.
        """
        return max(0.0, now - self.heartbeat_at)

    def is_stale(self, now: float, ttl: float) -> bool:
        """Whether the holder is presumed dead (claimed + heartbeat old)."""
        return self.status == CLAIMED and self.age(now) > ttl

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


class LeaseStore:
    """Claim/heartbeat/release operations over one leases directory.

    Args:
        root: the *cache* root; leases live in ``<root>/leases``.
        run_id: identity of the coordinating run — done-markers from a
            different ``run_id`` render a cell ``claimed_elsewhere``.
        worker_id: identity of this claimant (one store per worker).
        ttl_seconds: heartbeat age beyond which claims are stealable.
        clock: wall-clock source, injectable for tests.
        monotonic: monotonic clock used for local staleness
            observations (immune to wall-clock steps).
    """

    def __init__(
        self,
        root: Union[str, Path],
        run_id: str,
        worker_id: str,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        clock=time.time,
        monotonic=time.monotonic,
    ) -> None:
        from ..experiments.cache import ResultCache

        self.dir = Path(root) / ResultCache.LEASES_DIRNAME
        self.dir.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id
        self.worker_id = worker_id
        self.ttl = float(ttl_seconds)
        self._clock = clock
        self._monotonic = monotonic
        self._host = socket.gethostname()
        #: key -> (heartbeat_at last seen, monotonic instant first seen).
        self._observed: dict = {}

    def path_for(self, key: str) -> Path:
        """On-disk path of the lease for cache key ``key``."""
        return self.dir / f"{key}.lease"

    def read(self, key: str) -> Optional[Lease]:
        """The current lease for ``key``, or ``None``.

        A torn or garbage lease file (only possible from non-atomic
        external writers) reads as ``None`` — i.e. as claimable.
        """
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(text)
            return Lease.from_dict({"key": key, **data})
        except (ValueError, TypeError):
            return None

    def claim(self, key: str) -> bool:
        """Try to claim ``key``; ``True`` exactly for the one winner.

        A fresh claim uses ``O_CREAT | O_EXCL`` so the filesystem picks
        the winner.  If a lease already exists it is claimable only
        when stale (holder heartbeat older than the TTL); takeover is
        an atomic replace and is confirmed by reading the file back —
        of N racing stealers, the one whose write landed last owns the
        lease and everyone else reports failure.
        """
        now = self._clock()
        path = self.path_for(key)
        body = self._render(key, CLAIMED, claimed_at=now, takeovers=0)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = self.read(key)
            if existing is None:
                # Unreadable lease.  Two very different causes: a
                # racing claimer that won the exclusive create
                # microseconds ago and has not finished writing (the
                # file is brand new — leave it alone), or a torn file
                # from a non-atomic external writer (it will never
                # become readable and nobody can heartbeat it — after
                # a TTL of staying garbage, clear it so the cell is
                # claimable again instead of pinned forever).
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    return False
                if age > self.ttl:
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass
                return False
            if existing.status == DONE:
                self._observed.pop(key, None)
                return False
            # Wall-clock staleness catches ordinary deaths; the
            # monotonic observation catches holders whose heartbeat is
            # pinned fresh by a backwards wall-clock step.
            if not (
                existing.is_stale(now, self.ttl)
                or self.observed_stale(key, existing)
            ):
                return False
            self._observed.pop(key, None)
            return self._takeover(key, existing, now)
        try:
            os.write(fd, body.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def observed_stale(self, key: str, lease: Lease) -> bool:
        """Staleness judged by *this store's* monotonic clock.

        Wall-clock staleness misjudges in both directions: a forward
        step fakes staleness (survivable — takeover is safe by
        design), while a backwards step makes a dead holder's
        heartbeat look perpetually fresh (not survivable — the cell
        would never be taken over).  So the store remembers the
        monotonic instant it first saw each ``heartbeat_at`` value;
        a claimed lease whose heartbeat has not advanced for a full
        TTL of local monotonic time is stale regardless of what the
        wall-clock arithmetic says.  The first observation of any
        heartbeat value always reads fresh — staleness needs a full
        locally-measured TTL of silence.
        """
        mono_now = self._monotonic()
        seen = self._observed.get(key)
        if seen is None or seen[0] != lease.heartbeat_at:
            self._observed[key] = (lease.heartbeat_at, mono_now)
            return False
        return mono_now - seen[1] > self.ttl

    def _takeover(self, key: str, stale: Lease, now: float) -> bool:
        """Steal a stale lease; ``True`` if our write won the race."""
        from ..fsutil import atomic_write_text

        body = self._render(
            key, CLAIMED, claimed_at=now, takeovers=stale.takeovers + 1
        )
        atomic_write_text(self.path_for(key), body)
        winner = self.read(key)
        return (
            winner is not None
            and winner.worker_id == self.worker_id
            and winner.run_id == self.run_id
        )

    def heartbeat(self, key: str) -> bool:
        """Refresh our claim on ``key``; ``False`` if we lost it.

        Losing a lease (another worker stole it after our heartbeat
        stalled) is survivable — the holder keeps computing and both
        publish identical bytes — but the caller should stop counting
        the cell as exclusively theirs.
        """
        current = self.read(key)
        if current is None or current.status == DONE:
            return False
        if current.worker_id != self.worker_id or current.run_id != self.run_id:
            return False
        from ..fsutil import atomic_write_text

        body = self._render(
            key,
            CLAIMED,
            claimed_at=current.claimed_at,
            takeovers=current.takeovers,
        )
        atomic_write_text(self.path_for(key), body)
        return True

    def release_done(self, key: str, wall_seconds: float = 0.0) -> None:
        """Replace our claim with a ``done`` marker (provenance journal).

        The marker inherits the current lease's takeover count —
        whether that lease is still our claim or already a thief's (or
        even the thief's done marker, when we are the resumed original
        holder publishing second) — so the journal records how
        contested the cell was; the chaos invariant checker reads it
        back as "cells lost, then recovered".
        """
        from ..fsutil import atomic_write_text

        now = self._clock()
        current = self.read(key)
        takeovers = current.takeovers if current is not None else 0
        body = self._render(
            key,
            DONE,
            claimed_at=now,
            takeovers=takeovers,
            wall_seconds=wall_seconds,
        )
        atomic_write_text(self.path_for(key), body)
        self._observed.pop(key, None)

    def release_failed(self, key: str) -> None:
        """Drop our claim so another worker may retry immediately."""
        current = self.read(key)
        if current is None or current.worker_id != self.worker_id:
            return
        try:
            self.path_for(key).unlink(missing_ok=True)
        except OSError:
            pass
        self._observed.pop(key, None)

    def _render(
        self,
        key: str,
        status: str,
        claimed_at: float,
        takeovers: int,
        wall_seconds: float = 0.0,
    ) -> str:
        now = self._clock()
        return json.dumps(
            {
                "status": status,
                "run_id": self.run_id,
                "worker_id": self.worker_id,
                "pid": os.getpid(),
                "host": self._host,
                "claimed_at": claimed_at,
                "heartbeat_at": now,
                "takeovers": takeovers,
                "wall_seconds": round(wall_seconds, 6),
            },
            sort_keys=True,
        )
