"""Programmatic validation of the paper's headline claims.

Runs the reproduction experiments and checks each qualitative claim the
paper makes, producing a structured report (also available from the CLI
as ``repro validate``).  This is the repository's "does the
reproduction still reproduce?" switchboard: every claim is a named,
evaluable predicate over experiment outputs, so a regression in the
simulator or a recalibration of the workload shows up as a failed claim
rather than a silently drifting number.

The claims checked (see EXPERIMENTS.md for the full paper-vs-measured
discussion, including the known gaps that are deliberately *not*
asserted here):

1.  Baseline utilization sits in the paper's 20-60% band (Figure 4).
2.  Suspension times are long and right-skewed (Figure 2).
3.  ResSusUtil cuts the average completion time of suspended jobs
    (Table 1, "50% reduction").
4.  ResSusUtil cuts the average wasted completion time (Table 1,
    "reduce the system waste time by more than 33%").
5.  ResSusUtil all but eliminates time spent suspended (Tables 1-2).
6.  Random alternate-pool selection is clearly worse than
    utilization-based selection without second chances (Tables 1-3).
7.  High load amplifies completion times (Table 2 vs Table 1).
8.  Rescheduling keeps working under the utilization-based initial
    scheduler (Table 3).
9.  Adding waiting-job rescheduling improves on suspended-only
    rescheduling (Table 4 vs Table 2).
10. With second chances, random selection performs comparably to
    utilization-based selection (Tables 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .experiments import figures, tables

__all__ = ["ClaimResult", "ValidationReport", "validate_paper_claims"]


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one paper claim.

    Attributes:
        claim: short name of the claim.
        paper: what the paper reports.
        measured: what this reproduction measured.
        passed: whether the qualitative claim held.
    """

    claim: str
    paper: str
    measured: str
    passed: bool


@dataclass(frozen=True)
class ValidationReport:
    """All claim results plus convenience accessors."""

    results: List[ClaimResult]

    @property
    def passed(self) -> bool:
        """True when every claim held."""
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[ClaimResult]:
        """The claims that did not hold."""
        return [r for r in self.results if not r.passed]

    def render(self) -> str:
        """Human-readable report table."""
        lines = [f"{'':2} {'claim':<44} {'paper':<26} measured"]
        lines.append("-" * 100)
        for r in self.results:
            mark = "OK" if r.passed else "!!"
            lines.append(f"{mark:2} {r.claim:<44} {r.paper:<26} {r.measured}")
        verdict = "ALL CLAIMS HOLD" if self.passed else (
            f"{len(self.failures)} CLAIM(S) FAILED"
        )
        lines.append("-" * 100)
        lines.append(verdict)
        return "\n".join(lines)


def validate_paper_claims(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    year_horizon: Optional[float] = None,
) -> ValidationReport:
    """Run the experiment suite and check the paper's headline claims."""
    t1 = tables.table1(scale=scale, seed=seed)
    t2 = tables.table2(scale=scale, seed=seed)
    t3 = tables.table3(scale=scale, seed=seed)
    t4 = tables.table4(scale=scale, seed=seed)
    t5 = tables.table5(scale=scale, seed=seed)
    fig2 = figures.figure2(scale=scale, seed=seed, horizon=year_horizon)
    fig4 = figures.figure4(scale=scale, seed=seed, horizon=year_horizon)

    results: List[ClaimResult] = []

    def check(claim: str, paper: str, measured: str, passed: bool) -> None:
        results.append(
            ClaimResult(claim=claim, paper=paper, measured=measured, passed=passed)
        )

    mean_util = fig4.analysis.mean_utilization_pct
    check(
        "utilization in the 20-60% band (Fig 4)",
        "~40% average",
        f"{mean_util:.0f}% average",
        20.0 <= mean_util <= 60.0,
    )

    susp = fig2.analysis
    check(
        "suspensions long and right-skewed (Fig 2)",
        "median 437, mean 905",
        f"median {susp.median_minutes:.0f}, mean {susp.mean_minutes:.0f}",
        susp.median_minutes > 30.0 and susp.mean_minutes > susp.median_minutes,
    )

    util_ct_gain = t1.avg_ct_suspended_reduction("ResSusUtil")
    check(
        "ResSusUtil cuts suspended jobs' AvgCT (T1)",
        "-49%",
        f"{-util_ct_gain:.0f}%" if util_ct_gain is not None else "n/a",
        util_ct_gain is not None and util_ct_gain > 10.0,
    )

    util_wct_gain = t1.avg_wct_reduction("ResSusUtil")
    check(
        "ResSusUtil cuts AvgWCT by >=33% (T1)",
        "-33%",
        f"{-util_wct_gain:.0f}%" if util_wct_gain is not None else "n/a",
        util_wct_gain is not None and util_wct_gain >= 33.0,
    )

    st_baseline = t1.baseline().avg_st or 0.0
    st_resched = t1.by_name("ResSusUtil").avg_st or 0.0
    check(
        "ResSusUtil eliminates suspend time (T1)",
        "1189 -> 82 min",
        f"{st_baseline:.0f} -> {st_resched:.0f} min",
        st_resched < 0.25 * st_baseline if st_baseline else False,
    )

    rand_worse = all(
        comparison.by_name("ResSusRand").avg_wct
        > comparison.by_name("ResSusUtil").avg_wct
        for comparison in (t1, t2, t3)
    )
    check(
        "random selection clearly worse than util (T1-T3)",
        "Rand backfires",
        "Rand > Util AvgWCT in T1, T2, T3" if rand_worse else "ordering violated",
        rand_worse,
    )

    load_ratio = t2.baseline().avg_ct_all / t1.baseline().avg_ct_all
    check(
        "high load inflates AvgCT(all) (T2 vs T1)",
        "1.74x",
        f"{load_ratio:.2f}x",
        load_ratio > 1.2,
    )

    t3_gain = t3.avg_ct_suspended_reduction("ResSusUtil")
    check(
        "rescheduling works under util-based initial (T3)",
        "-75% CT(susp)",
        f"{-t3_gain:.0f}%" if t3_gain is not None else "n/a",
        t3_gain is not None and t3_gain > 0.0,
    )

    combined_better = (
        t4.by_name("ResSusWaitUtil").avg_wct < t2.by_name("ResSusUtil").avg_wct
    )
    check(
        "waiting-job rescheduling improves further (T4 vs T2)",
        "-79% vs -75% CT(susp)",
        "WaitUtil < Util on AvgWCT" if combined_better else "no improvement",
        combined_better,
    )

    rand_competitive = all(
        comparison.by_name("ResSusWaitRand").avg_wct
        < 2.0 * comparison.by_name("ResSusWaitUtil").avg_wct
        for comparison in (t4, t5)
    )
    check(
        "random ~ util with second chances (T4-T5)",
        "within ~1-13%",
        "within 2x in T4 and T5" if rand_competitive else "not competitive",
        rand_competitive,
    )

    return ValidationReport(results=results)
