"""Windowed aggregation of state samples.

The paper's Figure 4 plots system utilization and the number of
suspended jobs over a year: "We sampled the number of suspended jobs in
the system and the system utilization every minute and aggregated them
to get an average number based on a 100 minutes interval."  This module
performs exactly that aggregation over the simulator's per-minute
samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from ..simulator.results import StateSample

__all__ = ["WindowedPoint", "aggregate_samples", "utilization_series", "suspension_series"]


@dataclass(frozen=True)
class WindowedPoint:
    """Mean state over one aggregation window.

    Attributes:
        window_start: start minute of the window.
        utilization: mean busy fraction over the window, in [0, 1].
        suspended_jobs: mean number of suspended jobs.
        waiting_jobs: mean number of waiting jobs.
        running_jobs: mean number of running jobs.
        sample_count: samples that fell into the window.
    """

    window_start: float
    utilization: float
    suspended_jobs: float
    waiting_jobs: float
    running_jobs: float
    sample_count: int


def aggregate_samples(
    samples: Sequence[StateSample], window_minutes: float = 100.0
) -> List[WindowedPoint]:
    """Aggregate per-minute samples into fixed windows (paper: 100 min)."""
    if window_minutes <= 0:
        raise ConfigurationError(f"window_minutes must be > 0, got {window_minutes}")
    if not samples:
        return []
    points: List[WindowedPoint] = []
    window_index = 0
    acc_util = acc_susp = acc_wait = acc_run = 0.0
    count = 0
    for sample in samples:
        index = int(sample.minute // window_minutes)
        if index != window_index and count:
            points.append(
                _close_window(
                    window_index, window_minutes, acc_util, acc_susp, acc_wait, acc_run, count
                )
            )
            acc_util = acc_susp = acc_wait = acc_run = 0.0
            count = 0
        window_index = index
        acc_util += sample.utilization
        acc_susp += sample.suspended_jobs
        acc_wait += sample.waiting_jobs
        acc_run += sample.running_jobs
        count += 1
    if count:
        points.append(
            _close_window(
                window_index, window_minutes, acc_util, acc_susp, acc_wait, acc_run, count
            )
        )
    return points


def _close_window(
    index: int,
    window_minutes: float,
    acc_util: float,
    acc_susp: float,
    acc_wait: float,
    acc_run: float,
    count: int,
) -> WindowedPoint:
    return WindowedPoint(
        window_start=index * window_minutes,
        utilization=acc_util / count,
        suspended_jobs=acc_susp / count,
        waiting_jobs=acc_wait / count,
        running_jobs=acc_run / count,
        sample_count=count,
    )


def utilization_series(
    samples: Sequence[StateSample], window_minutes: float = 100.0
) -> List[float]:
    """Just the utilization values of :func:`aggregate_samples` (%)."""
    return [p.utilization * 100.0 for p in aggregate_samples(samples, window_minutes)]


def suspension_series(
    samples: Sequence[StateSample], window_minutes: float = 100.0
) -> List[float]:
    """Just the mean suspended-job counts of :func:`aggregate_samples`."""
    return [p.suspended_jobs for p in aggregate_samples(samples, window_minutes)]
