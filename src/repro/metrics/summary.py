"""The paper's job and system-wide metrics (Section 3.1).

Quoting the definitions being implemented:

* **Suspend Rate** — "the fraction of all jobs submitted to NetBatch
  that have been suspended at least once during the job lifetime".
* **AvgCT** — "the average completion time ... further broken into two
  subcategories, where we consider all jobs and only jobs that have
  been suspended at least once".
* **AvgST** — "the average suspend time of jobs that have been
  suspended at least once".
* **AvgWCT** — "the average wasted completion time of jobs, where
  wasted time for a job is defined as the average duration in which a
  job exists in NetBatch, but do not make progress towards job
  completion", composed of (c1) wait time, (c2) suspend time and (c3)
  wasted time by rescheduling.  "We first determine the total wasted
  completion time for all jobs ... and then divide by the number of
  jobs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..simulator.results import SimulationResult

__all__ = ["WasteBreakdown", "PerformanceSummary", "summarize"]


@dataclass(frozen=True)
class WasteBreakdown:
    """Per-job average waste, split into the paper's three components.

    All values are minutes averaged over **all** jobs (not only the
    affected ones), so the components sum to AvgWCT — exactly the
    stacked bars of the paper's Figure 3.
    """

    wait_time: float
    suspend_time: float
    resched_time: float

    @property
    def total(self) -> float:
        """AvgWCT: the sum of the three components."""
        return self.wait_time + self.suspend_time + self.resched_time


@dataclass(frozen=True)
class PerformanceSummary:
    """One row of the paper's result tables.

    Attributes:
        policy_name: rescheduling strategy (NoRes, ResSusUtil, ...).
        scheduler_name: initial scheduler in use.
        job_count: jobs submitted (including rejected ones).
        completed_count: jobs that finished.
        rejected_count: statically unschedulable jobs.
        suspend_rate: fraction of jobs suspended at least once.
        avg_ct_suspended: mean completion time over suspended jobs
            (``None`` when no job was suspended).
        avg_ct_all: mean completion time over all completed jobs.
        avg_st: mean total suspend time over suspended jobs (``None``
            when no job was suspended).
        waste: the AvgWCT breakdown; ``waste.total`` is AvgWCT.
        avg_restarts: mean restarts per job (rescheduling activity).
        avg_waiting_moves: mean waiting-queue moves per job.
    """

    policy_name: str
    scheduler_name: str
    job_count: int
    completed_count: int
    rejected_count: int
    suspend_rate: float
    avg_ct_suspended: Optional[float]
    avg_ct_all: float
    avg_st: Optional[float]
    waste: WasteBreakdown
    avg_restarts: float
    avg_waiting_moves: float

    @property
    def avg_wct(self) -> float:
        """The paper's AvgWCT (alias for ``waste.total``)."""
        return self.waste.total


def summarize(result: SimulationResult) -> PerformanceSummary:
    """Compute a :class:`PerformanceSummary` from a simulation result."""
    records = list(result.records)
    # Permanent (fault-injected) failures have finish_minute None and
    # count toward the summary's not-completed remainder.
    completed = [r for r in records if not r.rejected and r.finish_minute is not None]
    suspended = [r for r in completed if r.was_suspended]

    completed_count = len(completed)
    suspended_count = len(suspended)

    def mean(values: Iterable[float], count: int) -> float:
        return sum(values) / count if count else 0.0

    avg_ct_all = mean((r.completion_time for r in completed), completed_count)
    avg_ct_suspended = (
        mean((r.completion_time for r in suspended), suspended_count)
        if suspended_count
        else None
    )
    avg_st = (
        mean((r.suspend_time for r in suspended), suspended_count)
        if suspended_count
        else None
    )
    waste = WasteBreakdown(
        wait_time=mean((r.wait_time for r in completed), completed_count),
        suspend_time=mean((r.suspend_time for r in completed), completed_count),
        resched_time=mean((r.wasted_restart_time for r in completed), completed_count),
    )
    return PerformanceSummary(
        policy_name=result.policy_name,
        scheduler_name=result.scheduler_name,
        job_count=len(records),
        completed_count=completed_count,
        rejected_count=len(records) - completed_count,
        suspend_rate=suspended_count / completed_count if completed_count else 0.0,
        avg_ct_suspended=avg_ct_suspended,
        avg_ct_all=avg_ct_all,
        avg_st=avg_st,
        waste=waste,
        avg_restarts=mean((r.restart_count for r in completed), completed_count),
        avg_waiting_moves=mean((r.waiting_move_count for r in completed), completed_count),
    )
