"""Empirical cumulative distribution functions.

Used for the paper's Figure 2 (CDF of job suspension time) and anywhere
else a distribution needs summarising (completion times, wait times).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..workload.distributions import quantile

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """An empirical CDF over a finite sample.

    Example:
        >>> cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        >>> cdf.fraction_at_most(2.0)
        0.5
        >>> cdf.percentile(50)
        2.5
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values: List[float] = sorted(float(v) for v in values)
        if not self._values:
            raise ConfigurationError("EmpiricalCDF needs at least one value")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        """The sample, sorted ascending."""
        return self._values

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile; ``p`` in [0, 100]."""
        return quantile(self._values, p / 100.0)

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    @property
    def mean(self) -> float:
        """The sample mean."""
        return sum(self._values) / len(self._values)

    @property
    def minimum(self) -> float:
        """The smallest sample value."""
        return self._values[0]

    @property
    def maximum(self) -> float:
        """The largest sample value."""
        return self._values[-1]

    def fraction_at_most(self, x: float) -> float:
        """F(x): fraction of the sample ≤ ``x`` (binary search)."""
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._values)

    def fraction_above(self, x: float) -> float:
        """1 − F(x): fraction of the sample strictly greater than ``x``."""
        return 1.0 - self.fraction_at_most(x)

    def points(self, count: int = 100) -> List[Tuple[float, float]]:
        """``count`` evenly spaced (value, cumulative-fraction) points.

        Convenient for plotting or for printing a figure as a table of
        series points, which is what the Figure-2 benchmark does.
        """
        if count < 2:
            raise ConfigurationError(f"points count must be >= 2, got {count}")
        step = (len(self._values) - 1) / (count - 1)
        result: List[Tuple[float, float]] = []
        for i in range(count):
            index = int(round(i * step))
            value = self._values[index]
            result.append((value, (index + 1) / len(self._values)))
        return result
