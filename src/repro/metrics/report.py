"""Rendering of performance summaries as paper-style tables.

The benchmarks print these tables so their output can be compared line
by line with the paper's Tables 1-5.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .summary import PerformanceSummary

__all__ = ["render_table", "render_waste_components", "format_minutes"]


def format_minutes(value: Optional[float]) -> str:
    """Format a minutes quantity the way the paper's tables do."""
    if value is None:
        return "-"
    return f"{value:.1f}"


def render_table(
    summaries: Sequence[PerformanceSummary], title: str = ""
) -> str:
    """Render summaries as the paper's table layout.

    Columns: Suspend rate | AvgCT Suspend | AvgCT All | AvgST | AvgWCT.
    """
    header = (
        f"{'Strategy':<18} {'SuspRate':>9} {'AvgCT(susp)':>12} "
        f"{'AvgCT(all)':>11} {'AvgST':>9} {'AvgWCT':>9}"
    )
    rule = "-" * len(header)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.extend([header, rule])
    for s in summaries:
        lines.append(
            f"{s.policy_name:<18} {s.suspend_rate * 100:>8.2f}% "
            f"{format_minutes(s.avg_ct_suspended):>12} "
            f"{format_minutes(s.avg_ct_all):>11} "
            f"{format_minutes(s.avg_st):>9} "
            f"{format_minutes(s.avg_wct):>9}"
        )
    return "\n".join(lines)


def render_waste_components(
    summaries: Sequence[PerformanceSummary], title: str = ""
) -> str:
    """Render the AvgWCT decomposition (the paper's Figure 3 as text)."""
    header = (
        f"{'Strategy':<18} {'Wait':>9} {'Suspend':>9} {'Resched':>9} {'Total':>9}"
    )
    rule = "-" * len(header)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.extend([header, rule])
    for s in summaries:
        w = s.waste
        lines.append(
            f"{s.policy_name:<18} {w.wait_time:>9.1f} {w.suspend_time:>9.1f} "
            f"{w.resched_time:>9.1f} {w.total:>9.1f}"
        )
    return "\n".join(lines)
