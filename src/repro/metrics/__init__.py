"""Metrics: the paper's Section-3.1 definitions and supporting statistics."""

from .cdf import EmpiricalCDF
from .report import format_minutes, render_table, render_waste_components
from .summary import PerformanceSummary, WasteBreakdown, summarize
from .timeseries import (
    WindowedPoint,
    aggregate_samples,
    suspension_series,
    utilization_series,
)

__all__ = [
    "EmpiricalCDF",
    "format_minutes",
    "render_table",
    "render_waste_components",
    "PerformanceSummary",
    "WasteBreakdown",
    "summarize",
    "WindowedPoint",
    "aggregate_samples",
    "suspension_series",
    "utilization_series",
]
