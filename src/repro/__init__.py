"""repro: a reproduction of "On the Feasibility of Dynamic Rescheduling
on the Intel Distributed Computing Platform" (Middleware 2010).

The package provides:

* :mod:`repro.workload` — synthetic NetBatch-like traces and clusters
  (the substitute for Intel's proprietary inputs);
* :mod:`repro.simulator` — a from-scratch hybrid event/sampling
  simulator of the NetBatch middleware (the ASCA stand-in);
* :mod:`repro.core` — the paper's contribution: dynamic rescheduling
  policies for suspended and waiting jobs;
* :mod:`repro.policies` — the policy plugin registry: spec strings
  (``"dfrs:share=0.5"``), entry-point discovery, and the fractional /
  migration-cost policy families (see ``docs/policies.md``);
* :mod:`repro.schedulers` — the VPM initial schedulers;
* :mod:`repro.metrics` / :mod:`repro.analysis` — the paper's metrics
  and trace analyses;
* :mod:`repro.experiments` — one function per paper table and figure.

Quickstart::

    import repro

    scenario = repro.busy_week(scale=0.1)
    baseline = repro.simulate(scenario)
    rescheduled = repro.simulate(scenario, "ResSusUtil")
    print(repro.render_table([
        repro.summarize(baseline), repro.summarize(rescheduled)
    ]))

To observe a run, attach typed instrumentation (see
:mod:`repro.telemetry` and ``docs/observability.md``)::

    registry = repro.MetricsRegistry()
    repro.simulate(
        scenario, "ResSusUtil",
        instrumentation=repro.Instrumentation(metrics=registry),
    )
"""

from ._version import __version__
from .api import run_experiment, simulate
from .core import (
    DEFAULT_WAIT_THRESHOLD,
    NO_OVERHEAD,
    PAPER_POLICY_NAMES,
    Decision,
    DuplicateSuspended,
    LowestUtilizationSelector,
    MigrateSuspended,
    NoRescheduling,
    PoolSelector,
    PoolSnapshot,
    PredictedWaitSelector,
    RandomSelector,
    RescheduleSuspended,
    RescheduleSuspendedAndWaiting,
    RescheduleWaitingOnly,
    ReschedulingPolicy,
    RestartOverhead,
    ShortestQueueSelector,
    StaticSystemView,
    SystemView,
    WeightedSelector,
    no_res,
    policy_from_name,
    res_sus_rand,
    res_sus_util,
    res_sus_wait_rand,
    res_sus_wait_util,
)
from .errors import (
    ClusterError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownPolicyError,
    UnschedulableJobError,
)
from .policies import (
    FractionalSharePolicy,
    MigrationCostPolicy,
    PolicySpec,
    available_policies,
    available_selectors,
    canonical_spec,
    policy_from_spec,
    register_policy,
    register_selector,
    selector_from_spec,
)
from .metrics import (
    EmpiricalCDF,
    PerformanceSummary,
    WasteBreakdown,
    aggregate_samples,
    render_table,
    render_waste_components,
    summarize,
)
from .schedulers import (
    InitialScheduler,
    RoundRobinScheduler,
    UtilizationBasedScheduler,
    initial_scheduler_from_name,
)
from .experiments.checkpoint import GridCheckpoint
from .experiments.fault_sweep import FaultSweep, fault_sweep
from .experiments.runner import ExperimentCell, ExperimentRunner
from .faults import NO_FAULTS, FaultConfig, FaultStats, MachineChurn, PoolOutage, RetryPolicy
from .simulator import (
    JobRecord,
    OnlineResults,
    SimulationConfig,
    SimulationEngine,
    SimulationResult,
    StateSample,
    StreamingHistogram,
    run_simulation,
    run_streaming,
)
from .telemetry import (
    Instrumentation,
    MetricsRegistry,
    ProgressReporter,
)
from .workload import (
    ClusterSpec,
    ClusterTemplate,
    RandomStreams,
    Scenario,
    Trace,
    TraceJob,
    WorkloadGenerator,
    WorkloadModel,
    busy_week,
    generate_trace,
    high_load,
    high_suspension,
    smoke,
    year,
)

__all__ = [
    "__version__",
    # facade
    "simulate",
    "run_experiment",
    # experiments
    "ExperimentCell",
    "ExperimentRunner",
    "GridCheckpoint",
    "FaultSweep",
    "fault_sweep",
    # fault injection
    "NO_FAULTS",
    "FaultConfig",
    "FaultStats",
    "MachineChurn",
    "PoolOutage",
    "RetryPolicy",
    # telemetry
    "Instrumentation",
    "MetricsRegistry",
    "ProgressReporter",
    # core
    "DEFAULT_WAIT_THRESHOLD",
    "NO_OVERHEAD",
    "PAPER_POLICY_NAMES",
    "Decision",
    "DuplicateSuspended",
    "LowestUtilizationSelector",
    "MigrateSuspended",
    "NoRescheduling",
    "PoolSelector",
    "PoolSnapshot",
    "PredictedWaitSelector",
    "RandomSelector",
    "RescheduleSuspended",
    "RescheduleSuspendedAndWaiting",
    "RescheduleWaitingOnly",
    "ReschedulingPolicy",
    "RestartOverhead",
    "ShortestQueueSelector",
    "StaticSystemView",
    "SystemView",
    "WeightedSelector",
    "no_res",
    "policy_from_name",
    "res_sus_rand",
    "res_sus_util",
    "res_sus_wait_rand",
    "res_sus_wait_util",
    # policy registry
    "FractionalSharePolicy",
    "MigrationCostPolicy",
    "PolicySpec",
    "available_policies",
    "available_selectors",
    "canonical_spec",
    "policy_from_spec",
    "register_policy",
    "register_selector",
    "selector_from_spec",
    # errors
    "ClusterError",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "UnknownPolicyError",
    "UnschedulableJobError",
    # metrics
    "EmpiricalCDF",
    "PerformanceSummary",
    "WasteBreakdown",
    "aggregate_samples",
    "render_table",
    "render_waste_components",
    "summarize",
    # schedulers
    "InitialScheduler",
    "RoundRobinScheduler",
    "UtilizationBasedScheduler",
    "initial_scheduler_from_name",
    # simulator
    "JobRecord",
    "OnlineResults",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "StateSample",
    "StreamingHistogram",
    "run_simulation",
    "run_streaming",
    # workload
    "ClusterSpec",
    "ClusterTemplate",
    "RandomStreams",
    "Scenario",
    "Trace",
    "TraceJob",
    "WorkloadGenerator",
    "WorkloadModel",
    "busy_week",
    "generate_trace",
    "high_load",
    "high_suspension",
    "smoke",
    "year",
]
