"""Shared experiment parameters.

All experiment entry points honour two environment variables so the
benchmark suite can be scaled without editing code:

* ``REPRO_SCALE`` — cluster/workload scale factor (default 0.25 for the
  table experiments).  Larger values approach the paper's deployment
  size at the cost of runtime.
* ``REPRO_SEED`` — workload seed (default 2010, the publication year).

The execution backend honours three more (see ``docs/performance.md``):

* ``REPRO_WORKERS`` — process-pool width for experiment grids
  (default 1 = serial; parallel results are bit-identical to serial).
* ``REPRO_CACHE_DIR`` — directory for the content-addressed on-disk
  result cache; unset disables caching.
* ``REPRO_NO_CACHE`` — set to ``1``/``true``/``yes`` to bypass the
  cache even when a cache directory is configured.

The fault-injection sweep (``repro faults`` / ``docs/robustness.md``)
adds two more:

* ``REPRO_FAULT_MTBFS`` — comma-separated machine MTBFs in minutes.
* ``REPRO_FAULT_MTTR`` — mean machine repair time in minutes.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_TABLE_SCALE",
    "DEFAULT_YEAR_SCALE",
    "DEFAULT_YEAR_HORIZON",
    "DEFAULT_SEED",
    "DEFAULT_WORKERS",
    "DEFAULT_FAULT_MTBFS",
    "DEFAULT_FAULT_MTTR",
    "table_scale",
    "year_scale",
    "year_horizon",
    "seed",
    "workers",
    "cache_dir",
    "no_cache",
    "fault_mtbfs",
    "fault_mttr",
]

DEFAULT_TABLE_SCALE = 0.25
DEFAULT_YEAR_SCALE = 0.08
DEFAULT_YEAR_HORIZON = 200_000.0
DEFAULT_SEED = 2010
DEFAULT_WORKERS = 1

#: Machine MTBFs (minutes) swept by the fault-injection experiment:
#: roughly 1.4 days, 5.6 days and 3 weeks per machine — harsh, moderate
#: and mild churn for a week-long busy-week trace.
DEFAULT_FAULT_MTBFS = (2_000.0, 8_000.0, 32_000.0)

#: Mean machine repair time (minutes) for the fault-injection sweep.
DEFAULT_FAULT_MTTR = 120.0


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def table_scale() -> float:
    """Scale for the busy-week table experiments."""
    return _float_env("REPRO_SCALE", DEFAULT_TABLE_SCALE)


def year_scale() -> float:
    """Scale for the long-horizon figure experiments."""
    return _float_env("REPRO_YEAR_SCALE", DEFAULT_YEAR_SCALE)


def year_horizon() -> float:
    """Horizon (minutes) for the long-horizon figure experiments."""
    return _float_env("REPRO_YEAR_HORIZON", DEFAULT_YEAR_HORIZON)


def seed() -> int:
    """Workload seed for all experiments."""
    raw = os.environ.get("REPRO_SEED")
    if raw is None:
        return DEFAULT_SEED
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_SEED must be an int, got {raw!r}") from None


def workers() -> int:
    """Worker-process count for experiment grids (``REPRO_WORKERS``)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return DEFAULT_WORKERS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_WORKERS must be an int, got {raw!r}") from None
    if value < 1:
        raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def cache_dir() -> Optional[str]:
    """Result-cache directory (``REPRO_CACHE_DIR``); ``None`` disables caching."""
    return os.environ.get("REPRO_CACHE_DIR") or None


def no_cache() -> bool:
    """Whether ``REPRO_NO_CACHE`` asks to bypass the result cache."""
    return os.environ.get("REPRO_NO_CACHE", "").strip().lower() in {"1", "true", "yes"}


def fault_mtbfs() -> tuple:
    """Machine MTBFs (minutes) for the fault sweep (``REPRO_FAULT_MTBFS``).

    The override is a comma-separated list of positive minutes, e.g.
    ``REPRO_FAULT_MTBFS=1000,4000``.
    """
    raw = os.environ.get("REPRO_FAULT_MTBFS")
    if raw is None:
        return DEFAULT_FAULT_MTBFS
    values = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            value = float(part)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_FAULT_MTBFS entries must be numbers, got {part!r}"
            ) from None
        if value <= 0:
            raise ConfigurationError(
                f"REPRO_FAULT_MTBFS entries must be > 0, got {value}"
            )
        values.append(value)
    if not values:
        raise ConfigurationError("REPRO_FAULT_MTBFS must name at least one MTBF")
    return tuple(values)


def fault_mttr() -> float:
    """Mean machine repair time (minutes) for the fault sweep."""
    return _float_env("REPRO_FAULT_MTTR", DEFAULT_FAULT_MTTR)
