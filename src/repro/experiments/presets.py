"""Shared experiment parameters.

All experiment entry points honour two environment variables so the
benchmark suite can be scaled without editing code:

* ``REPRO_SCALE`` — cluster/workload scale factor (default 0.25 for the
  table experiments).  Larger values approach the paper's deployment
  size at the cost of runtime.
* ``REPRO_SEED`` — workload seed (default 2010, the publication year).

The execution backend honours three more (see ``docs/performance.md``):

* ``REPRO_WORKERS`` — process-pool width for experiment grids
  (default 1 = serial; parallel results are bit-identical to serial).
* ``REPRO_CACHE_DIR`` — directory for the content-addressed on-disk
  result cache; unset disables caching.
* ``REPRO_NO_CACHE`` — set to ``1``/``true``/``yes`` to bypass the
  cache even when a cache directory is configured.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_TABLE_SCALE",
    "DEFAULT_YEAR_SCALE",
    "DEFAULT_YEAR_HORIZON",
    "DEFAULT_SEED",
    "DEFAULT_WORKERS",
    "table_scale",
    "year_scale",
    "year_horizon",
    "seed",
    "workers",
    "cache_dir",
    "no_cache",
]

DEFAULT_TABLE_SCALE = 0.25
DEFAULT_YEAR_SCALE = 0.08
DEFAULT_YEAR_HORIZON = 200_000.0
DEFAULT_SEED = 2010
DEFAULT_WORKERS = 1


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def table_scale() -> float:
    """Scale for the busy-week table experiments."""
    return _float_env("REPRO_SCALE", DEFAULT_TABLE_SCALE)


def year_scale() -> float:
    """Scale for the long-horizon figure experiments."""
    return _float_env("REPRO_YEAR_SCALE", DEFAULT_YEAR_SCALE)


def year_horizon() -> float:
    """Horizon (minutes) for the long-horizon figure experiments."""
    return _float_env("REPRO_YEAR_HORIZON", DEFAULT_YEAR_HORIZON)


def seed() -> int:
    """Workload seed for all experiments."""
    raw = os.environ.get("REPRO_SEED")
    if raw is None:
        return DEFAULT_SEED
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_SEED must be an int, got {raw!r}") from None


def workers() -> int:
    """Worker-process count for experiment grids (``REPRO_WORKERS``)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return DEFAULT_WORKERS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_WORKERS must be an int, got {raw!r}") from None
    if value < 1:
        raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def cache_dir() -> Optional[str]:
    """Result-cache directory (``REPRO_CACHE_DIR``); ``None`` disables caching."""
    return os.environ.get("REPRO_CACHE_DIR") or None


def no_cache() -> bool:
    """Whether ``REPRO_NO_CACHE`` asks to bypass the result cache."""
    return os.environ.get("REPRO_NO_CACHE", "").strip().lower() in {"1", "true", "yes"}
