"""Process-pool execution backend for experiment grids.

Every sweep in this repository — the paper's tables, the ablations, any
user grid through :class:`~repro.experiments.runner.ExperimentRunner` —
reduces to the same unit of work: simulate one
(scenario, policy, scheduler) *cell* and summarize it.  This module
owns that unit:

* :func:`make_cell_task` freezes a cell into a :class:`CellTask`,
  deriving a spawn-key-style child seed from the cell's identity (see
  :func:`~repro.experiments.cache.derive_cell_seed`) so results are
  bit-identical no matter which worker runs the cell or in what order;
* :func:`run_grid_parallel` executes a batch of tasks — serially for
  ``n_workers=1``, else on a :class:`~concurrent.futures.ProcessPoolExecutor`
  — consulting an optional
  :class:`~repro.experiments.cache.ResultCache` and
  :class:`~repro.experiments.checkpoint.GridCheckpoint` first, and
  storing every fresh computation back to both.

The grid runner is built to survive its own platform, the same way the
simulated scheduler is expected to survive machine churn:

* cells whose **worker process died** (``BrokenProcessPool``) are
  retried with exponential backoff on a fresh pool; after repeated pool
  breaks each remaining cell runs in its *own* single-worker pool, so a
  persistently crashing cell is identified and only it fails;
* an optional **cell timeout** bounds how long the pool may go without
  completing a cell; stuck cells are recorded as timed out and the rest
  of the grid continues on a fresh pool;
* with **keep_going** the grid degrades gracefully: completed cells are
  returned in a :class:`GridReport` alongside structured
  :class:`CellFailure` entries (grid order) instead of the whole grid
  being lost;
* a **checkpoint** records every completed cell, so an interrupted grid
  resumes without recomputing them.

Tasks whose payload cannot be pickled (a user policy capturing a
lambda, an open file, ...) transparently fall back to serial in-process
execution, so exotic policies cost speed, never correctness.  Each
outcome reports its wall-clock seconds and whether it was served from
cache, making the speedup observable in benchmark logs and the CLI.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ExperimentExecutionError
from ..metrics.summary import PerformanceSummary, summarize
from ..simulator.config import SimulationConfig
from ..simulator.results import SimulationResult
from ..simulator.simulation import run_simulation
from .cache import ResultCache, cell_cache_key, derive_cell_seed
from .checkpoint import GridCheckpoint

__all__ = [
    "CellTask",
    "CellOutcome",
    "CellFailure",
    "GridReport",
    "PROVENANCE_COMPUTED",
    "PROVENANCE_CACHE_HIT",
    "PROVENANCE_CHECKPOINT",
    "PROVENANCE_CLAIMED_ELSEWHERE",
    "make_cell_task",
    "execute_cells",
    "run_grid_parallel",
]

#: This invocation actually ran the simulation.
PROVENANCE_COMPUTED = "computed"
#: Served from the content-addressed result cache (entry predates this run).
PROVENANCE_CACHE_HIT = "cache_hit"
#: Resumed from a grid checkpoint written by an earlier interrupted run.
PROVENANCE_CHECKPOINT = "checkpoint"
#: Computed during this run by a *different* worker/host sharing the
#: cache (the fabric's work-claiming protocol; see :mod:`repro.fabric`).
PROVENANCE_CLAIMED_ELSEWHERE = "claimed_elsewhere"


@dataclass(frozen=True)
class CellTask:
    """One fully specified simulation cell, ready to run anywhere.

    Attributes:
        index: position in the grid (outcomes are returned in this
            order regardless of completion order).
        scenario: the workload + cluster to simulate.
        policy: the rescheduling policy instance.
        scheduler: the initial scheduler instance (``None`` = engine
            default round-robin).
        config: simulation config whose ``seed`` is already the derived
            per-cell child seed.
        cell_id: stable human-readable identity used for seed
            derivation and error messages.
        cache_key: content-addressed cache key, or ``None`` when the
            cell must not be cached.
        keep_result: ship the full :class:`SimulationResult` back (not
            just the summary).
        policy_spec: the canonical registry spec string the policy was
            built from (see :mod:`repro.policies`), or ``None`` when it
            was constructed directly.  Carried for provenance and
            telemetry labels only — never part of the cell identity,
            seed or cache key.
    """

    index: int
    scenario: object
    policy: object
    scheduler: Optional[object]
    config: SimulationConfig
    cell_id: str
    cache_key: Optional[str]
    keep_result: bool = False
    policy_spec: Optional[str] = None


@dataclass(frozen=True)
class CellOutcome:
    """The observable output of one executed (or cache-served) cell.

    ``wall_seconds`` is always the cell's *simulation* cost — for a
    cache or checkpoint hit, the cost recorded when the entry was
    computed — so logs can show how much time was saved; ``provenance``
    says whether this invocation actually paid it and, if not, where
    the result came from: one of :data:`PROVENANCE_COMPUTED`,
    :data:`PROVENANCE_CACHE_HIT`, :data:`PROVENANCE_CHECKPOINT` or
    :data:`PROVENANCE_CLAIMED_ELSEWHERE`.  ``from_cache`` /
    ``from_checkpoint`` are the pre-provenance booleans, kept in sync
    for backward compatibility.
    """

    index: int
    scenario_name: str
    policy_name: str
    scheduler_name: str
    summary: PerformanceSummary
    result: Optional[SimulationResult]
    wall_seconds: float
    from_cache: bool
    seed: int
    from_checkpoint: bool = False
    provenance: str = PROVENANCE_COMPUTED
    policy_spec: Optional[str] = None


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell that could not be completed.

    Attributes:
        index: the cell's grid position.
        cell_id: the cell's stable identity.
        scenario_name / policy_name / scheduler_name: the cell's naming,
            mirrored from the task for report rendering.
        error_type: exception class name (``"TimeoutError"``,
            ``"BrokenProcessPool"``, ...).
        message: the exception message.
        attempts: how many executions were attempted.
        error: the exception object itself.
    """

    index: int
    cell_id: str
    scenario_name: str
    policy_name: str
    scheduler_name: str
    error_type: str
    message: str
    attempts: int
    error: BaseException = field(repr=False)


@dataclass(frozen=True)
class GridReport:
    """Everything :func:`run_grid_parallel` knows about one grid run.

    ``outcomes`` is in grid order with ``None`` holes where cells
    failed (only possible under ``keep_going``); ``failures`` holds the
    corresponding :class:`CellFailure` entries, also in grid order, so
    reports are stable across runs regardless of completion order.
    """

    outcomes: Tuple[Optional[CellOutcome], ...]
    failures: Tuple[CellFailure, ...]

    @property
    def ok(self) -> bool:
        """Whether every cell completed."""
        return not self.failures

    @property
    def completed(self) -> Tuple[CellOutcome, ...]:
        """The completed outcomes, grid order, holes removed."""
        return tuple(o for o in self.outcomes if o is not None)

    def provenance_counts(self) -> Dict[str, int]:
        """How many completed cells came from each provenance.

        Keys are the ``PROVENANCE_*`` values that actually occurred,
        in fixed order, so two identical runs render identically.
        """
        counts: Dict[str, int] = {}
        for kind in (
            PROVENANCE_COMPUTED,
            PROVENANCE_CACHE_HIT,
            PROVENANCE_CHECKPOINT,
            PROVENANCE_CLAIMED_ELSEWHERE,
        ):
            n = sum(1 for o in self.completed if o.provenance == kind)
            if n:
                counts[kind] = n
        return counts


def make_cell_task(
    index: int,
    scenario,
    policy,
    scheduler,
    config: SimulationConfig,
    keep_result: bool = False,
    variant: str = "",
    policy_spec: Optional[str] = None,
) -> CellTask:
    """Freeze one grid cell into a :class:`CellTask`.

    The cell's child seed is derived from ``config.seed`` and the cell
    identity (scenario name + seed, policy name, scheduler name) — not
    from call order — so two cells sharing a scenario but differing in
    policy never share a random stream, and re-running one cell alone
    reproduces its grid result exactly.

    ``variant`` extends the cell identity for grids where the *config*
    (not the scenario/policy/scheduler triple) distinguishes cells —
    e.g. the fault sweep's MTBF ladder — so such cells get distinct
    seeds and checkpoint entries.  Empty (the default) keeps cell ids
    bit-identical to pre-variant builds.

    ``policy_spec`` (or, absent that, a ``spec`` attribute left on the
    policy by :func:`repro.policies.policy_from_spec`) rides along on
    the task for provenance records; it never enters the cell identity.
    """
    scheduler_name = scheduler.name if scheduler is not None else "RoundRobin"
    cell_id = f"{scenario.name}#{scenario.seed}|{policy.name}|{scheduler_name}"
    if variant:
        cell_id += f"|{variant}"
    cell_config = replace(config, seed=derive_cell_seed(config.seed, cell_id))
    return CellTask(
        index=index,
        scenario=scenario,
        policy=policy,
        scheduler=scheduler,
        config=cell_config,
        cell_id=cell_id,
        cache_key=cell_cache_key(scenario, policy, scheduler, cell_config),
        keep_result=keep_result,
        policy_spec=policy_spec or getattr(policy, "spec", None),
    )


def _simulate_task(task: CellTask) -> Tuple[int, PerformanceSummary, Optional[SimulationResult], float]:
    """Worker entry point: run one cell and time it.

    Module-level (not a closure) so it pickles into pool workers.
    """
    start = time.perf_counter()
    result = run_simulation(
        task.scenario.trace,
        task.scenario.cluster,
        policy=task.policy,
        initial_scheduler=task.scheduler,
        config=task.config,
    )
    wall = time.perf_counter() - start
    summary = summarize(result)
    return task.index, summary, result if task.keep_result else None, wall


def _outcome(
    task: CellTask,
    summary,
    result,
    wall: float,
    from_cache: bool,
    from_checkpoint: bool = False,
    provenance: Optional[str] = None,
) -> CellOutcome:
    if provenance is None:
        if from_cache:
            provenance = PROVENANCE_CACHE_HIT
        elif from_checkpoint:
            provenance = PROVENANCE_CHECKPOINT
        else:
            provenance = PROVENANCE_COMPUTED
    return CellOutcome(
        index=task.index,
        scenario_name=task.scenario.name,
        policy_name=task.policy.name,
        scheduler_name=summary.scheduler_name,
        summary=summary,
        result=result,
        wall_seconds=wall,
        from_cache=from_cache,
        seed=task.config.seed,
        from_checkpoint=from_checkpoint,
        provenance=provenance,
        policy_spec=task.policy_spec,
    )


def _is_picklable(task: CellTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except Exception:
        return False


def _task_scheduler_name(task: CellTask) -> str:
    return task.scheduler.name if task.scheduler is not None else "RoundRobin"


def _cell_error(
    task: CellTask, exc: BaseException, completed: Sequence[CellOutcome]
) -> ExperimentExecutionError:
    return ExperimentExecutionError(
        task.scenario.name,
        task.policy.name,
        _task_scheduler_name(task),
        exc,
        # Grid order, not completion order: error reports must be
        # stable across runs however the pool interleaved the cells.
        completed_cells=tuple(sorted(completed, key=lambda o: o.index)),
    )


def run_grid_parallel(
    tasks: Sequence[CellTask],
    *,
    n_workers: int = 1,
    cache: Optional[ResultCache] = None,
    checkpoint: Optional[GridCheckpoint] = None,
    cell_timeout: Optional[float] = None,
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
    keep_going: bool = False,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> GridReport:
    """Execute a batch of cells, surviving worker crashes; return a report.

    Args:
        tasks: the cells, as built by :func:`make_cell_task`.
        n_workers: process-pool width; ``1`` runs everything serially
            in-process (no pool, no pickling).
        cache: optional result cache consulted before any simulation and
            updated after every fresh one.
        checkpoint: optional :class:`GridCheckpoint`; completed cells
            are journalled there and an interrupted grid resumes from
            it without recomputing them.  Cells that are not cacheable
            (live instrumentation) are not checkpointed either.
        cell_timeout: optional seconds the pool may go without
            completing a single cell.  When it trips, currently running
            cells are recorded as timed out (their worker processes are
            abandoned, not killed) and not-yet-started cells continue
            on a fresh pool.  In the per-cell isolation fallback (and
            with ``n_workers`` >= outstanding cells) this is an exact
            per-cell bound.  Timeouts are not retried.
        max_attempts: total executions allowed per cell when its worker
            process dies (``BrokenProcessPool``).  A pool break cannot
            be attributed to one cell, so every cell that was in flight
            is retried with backoff on a fresh pool; a cell reaching
            its final attempt runs in an isolated single-worker pool so
            a persistent crasher is identified and only it fails.
            Deterministic simulation errors are never retried.
        retry_backoff: base seconds slept after a pool break, doubling
            per subsequent break.
        keep_going: degrade gracefully — record a structured
            :class:`CellFailure` per dead cell and keep executing the
            rest of the grid, instead of raising at the first failure.
        progress: optional callable invoked with each
            :class:`CellOutcome` as it completes — cache hits included,
            parallel cells as their futures resolve (completion order,
            not grid order).  If it has an ``add_total(count)`` method,
            that is called first with this batch's size.
        sleep: sleep function, injectable for tests.

    Raises:
        ExperimentExecutionError: without ``keep_going``, when any cell
            fails; carries every completed cell, in grid order.
        ConfigurationError: for invalid ``n_workers``/``max_attempts``/
            ``retry_backoff``.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if max_attempts < 1:
        raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
    if retry_backoff < 0:
        raise ConfigurationError(f"retry_backoff must be >= 0, got {retry_backoff}")
    if progress is not None:
        add_total = getattr(progress, "add_total", None)
        if add_total is not None:
            add_total(len(tasks))

    outcomes: Dict[int, CellOutcome] = {}
    failures: Dict[int, CellFailure] = {}

    def record(outcome: CellOutcome) -> None:
        outcomes[outcome.index] = outcome
        if progress is not None:
            progress(outcome)

    def fail(task: CellTask, exc: BaseException, attempts_used: int) -> None:
        if not keep_going:
            raise _cell_error(task, exc, list(outcomes.values())) from exc
        failures[task.index] = CellFailure(
            index=task.index,
            cell_id=task.cell_id,
            scenario_name=task.scenario.name,
            policy_name=task.policy.name,
            scheduler_name=_task_scheduler_name(task),
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=attempts_used,
            error=exc,
        )

    pending: List[CellTask] = []
    for task in tasks:
        entry = cache.get(task.cache_key) if cache and task.cache_key else None
        if entry is not None and (not task.keep_result or entry.get("result") is not None):
            record(
                _outcome(
                    task,
                    entry["summary"],
                    entry.get("result") if task.keep_result else None,
                    entry.get("wall_seconds", 0.0),
                    from_cache=True,
                )
            )
            continue
        if entry is not None:
            # present but missing the raw result this caller needs:
            # recompute (and overwrite below); keep the stats honest.
            cache.stats.hits -= 1
            cache.stats.misses += 1
        if checkpoint is not None and task.cache_key:
            saved = checkpoint.get(task.cell_id, task.cache_key)
            if saved is not None and (
                not task.keep_result or saved.get("result") is not None
            ):
                record(
                    _outcome(
                        task,
                        saved["summary"],
                        saved.get("result") if task.keep_result else None,
                        saved.get("wall_seconds", 0.0),
                        from_cache=False,
                        from_checkpoint=True,
                    )
                )
                continue
        pending.append(task)

    def finish(task: CellTask, summary, result, wall: float) -> None:
        if cache is not None and task.cache_key:
            cache.put(
                task.cache_key,
                {"summary": summary, "result": result, "wall_seconds": wall},
            )
        if checkpoint is not None and task.cache_key:
            checkpoint.put(
                task.cell_id,
                task.cache_key,
                {
                    "summary": summary,
                    "result": result if task.keep_result else None,
                    "wall_seconds": wall,
                },
            )
        record(_outcome(task, summary, result, wall, from_cache=False))

    def run_serial(serial_tasks: Sequence[CellTask]) -> None:
        for task in serial_tasks:
            try:
                _, summary, result, wall = _simulate_task(task)
            except Exception as exc:
                fail(task, exc, 1)
                continue
            finish(task, summary, result, wall)

    def report() -> GridReport:
        return GridReport(
            outcomes=tuple(outcomes.get(t.index) for t in tasks),
            failures=tuple(
                failures[t.index] for t in tasks if t.index in failures
            ),
        )

    if n_workers == 1 or len(pending) <= 1:
        run_serial(pending)
        return report()

    poolable = [t for t in pending if _is_picklable(t)]
    hostile = [t for t in pending if t.index not in {p.index for p in poolable}]

    attempts: Dict[int, int] = {t.index: 0 for t in poolable}
    queue: List[CellTask] = list(poolable)
    isolate = False
    breaks = 0
    while queue:
        if isolate:
            # Per-cell isolation: each remaining cell gets its own
            # single-worker pool, so a crash (or timeout) is
            # unambiguously this cell's.
            task = queue.pop(0)
            attempts[task.index] += 1
            pool = ProcessPoolExecutor(max_workers=1)
            future = pool.submit(_simulate_task, task)
            try:
                _, summary, result, wall = future.result(timeout=cell_timeout)
            except BrokenExecutor as exc:
                pool.shutdown(wait=False, cancel_futures=True)
                fail(task, exc, attempts[task.index])
                continue
            except FuturesTimeoutError:
                pool.shutdown(wait=False, cancel_futures=True)
                fail(
                    task,
                    TimeoutError(
                        f"cell {task.cell_id} did not finish within {cell_timeout}s"
                    ),
                    attempts[task.index],
                )
                continue
            except Exception as exc:
                pool.shutdown(wait=False)
                fail(task, exc, attempts[task.index])
                continue
            pool.shutdown(wait=False)
            finish(task, summary, result, wall)
            continue

        batch = queue
        queue = []
        pool = ProcessPoolExecutor(max_workers=min(n_workers, len(batch)))
        future_tasks: Dict[object, CellTask] = {}
        broke: Optional[BaseException] = None
        try:
            try:
                for t in batch:
                    future_tasks[pool.submit(_simulate_task, t)] = t
            except BrokenExecutor as exc:
                broke = exc  # pool died during submission
            for t in batch:
                attempts[t.index] += 1
            unfinished = set(future_tasks)
            submitted = {t.index for t in future_tasks.values()}
            unsubmitted = [t for t in batch if t.index not in submitted]
            timed_out = False
            while unfinished and broke is None:
                done, _ = wait(
                    unfinished, timeout=cell_timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    timed_out = True
                    break
                for future in sorted(done, key=lambda f: future_tasks[f].index):
                    task = future_tasks[future]
                    exc = future.exception()
                    if exc is None:
                        unfinished.discard(future)
                        _, summary, result, wall = future.result()
                        finish(task, summary, result, wall)
                    elif isinstance(exc, BrokenExecutor):
                        # The pool is dead; every unfinished future is
                        # about to fail the same way.  Leave them (and
                        # this one) in `unfinished`: they are victims,
                        # not verdicts.
                        broke = exc
                    else:
                        unfinished.discard(future)
                        if not keep_going:
                            for f in unfinished:
                                f.cancel()
                        fail(task, exc, attempts[task.index])
            if timed_out:
                # Nothing completed inside the window: the running
                # cells are stuck.  Never-started cells continue on a
                # fresh pool; running ones are recorded as timed out
                # and their workers abandoned.
                for future in list(unfinished):
                    if future.cancel():
                        task = future_tasks[future]
                        attempts[task.index] -= 1  # never actually ran
                        queue.append(task)
                        unfinished.discard(future)
                stuck = sorted(
                    (future_tasks[f] for f in unfinished), key=lambda t: t.index
                )
                for task in stuck:
                    fail(
                        task,
                        TimeoutError(
                            f"cell {task.cell_id} did not finish within "
                            f"{cell_timeout}s"
                        ),
                        attempts[task.index],
                    )
            elif broke is not None:
                breaks += 1
                victims = sorted(
                    {future_tasks[f].index: future_tasks[f] for f in unfinished}.values(),
                    key=lambda t: t.index,
                )
                for t in unsubmitted:
                    attempts[t.index] -= 1  # never actually ran
                victims = victims + unsubmitted
                for task in victims:
                    if attempts[task.index] >= max_attempts:
                        fail(task, broke, attempts[task.index])
                    else:
                        queue.append(task)
                        if attempts[task.index] >= max_attempts - 1:
                            # Final attempt: run it isolated so the
                            # persistent crasher is identifiable.
                            isolate = True
                if queue and retry_backoff > 0:
                    sleep(retry_backoff * (2 ** (breaks - 1)))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # pickling-hostile cells run serially in this process, after the
    # pool batches so a pool failure cannot lose their results.
    run_serial(hostile)
    return report()


def execute_cells(
    tasks: Sequence[CellTask],
    n_workers: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
    checkpoint: Optional[GridCheckpoint] = None,
) -> List[CellOutcome]:
    """Execute a batch of cells and return outcomes in grid order.

    The strict-mode wrapper over :func:`run_grid_parallel`: worker
    crashes are retried the same way, but any cell that ultimately
    fails raises :class:`~repro.errors.ExperimentExecutionError`
    (carrying the completed cells, grid order) instead of producing a
    partial report.

    Raises:
        ExperimentExecutionError: when any cell fails.
        ConfigurationError: for a non-positive ``n_workers``.
    """
    grid = run_grid_parallel(
        tasks,
        n_workers=n_workers,
        cache=cache,
        checkpoint=checkpoint,
        cell_timeout=timeout,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
        keep_going=False,
        progress=progress,
    )
    return list(grid.outcomes)
