"""Process-pool execution backend for experiment grids.

Every sweep in this repository — the paper's tables, the ablations, any
user grid through :class:`~repro.experiments.runner.ExperimentRunner` —
reduces to the same unit of work: simulate one
(scenario, policy, scheduler) *cell* and summarize it.  This module
owns that unit:

* :func:`make_cell_task` freezes a cell into a :class:`CellTask`,
  deriving a spawn-key-style child seed from the cell's identity (see
  :func:`~repro.experiments.cache.derive_cell_seed`) so results are
  bit-identical no matter which worker runs the cell or in what order;
* :func:`execute_cells` runs a batch of tasks — serially for
  ``n_workers=1``, else on a :class:`~concurrent.futures.ProcessPoolExecutor`
  — consulting an optional
  :class:`~repro.experiments.cache.ResultCache` first, and storing every
  fresh computation back.

Tasks whose payload cannot be pickled (a user policy capturing a
lambda, an open file, ...) transparently fall back to serial in-process
execution, so exotic policies cost speed, never correctness.  Each
outcome reports its wall-clock seconds and whether it was served from
cache, making the speedup observable in benchmark logs and the CLI.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ExperimentExecutionError
from ..metrics.summary import PerformanceSummary, summarize
from ..simulator.config import SimulationConfig
from ..simulator.results import SimulationResult
from ..simulator.simulation import run_simulation
from .cache import ResultCache, cell_cache_key, derive_cell_seed

__all__ = ["CellTask", "CellOutcome", "make_cell_task", "execute_cells"]


@dataclass(frozen=True)
class CellTask:
    """One fully specified simulation cell, ready to run anywhere.

    Attributes:
        index: position in the grid (outcomes are returned in this
            order regardless of completion order).
        scenario: the workload + cluster to simulate.
        policy: the rescheduling policy instance.
        scheduler: the initial scheduler instance (``None`` = engine
            default round-robin).
        config: simulation config whose ``seed`` is already the derived
            per-cell child seed.
        cell_id: stable human-readable identity used for seed
            derivation and error messages.
        cache_key: content-addressed cache key, or ``None`` when the
            cell must not be cached.
        keep_result: ship the full :class:`SimulationResult` back (not
            just the summary).
    """

    index: int
    scenario: object
    policy: object
    scheduler: Optional[object]
    config: SimulationConfig
    cell_id: str
    cache_key: Optional[str]
    keep_result: bool = False


@dataclass(frozen=True)
class CellOutcome:
    """The observable output of one executed (or cache-served) cell.

    ``wall_seconds`` is always the cell's *simulation* cost — for a
    cache hit, the cost recorded when the entry was computed — so logs
    can show how much time the cache saved; ``from_cache`` says whether
    this invocation actually paid it.
    """

    index: int
    scenario_name: str
    policy_name: str
    scheduler_name: str
    summary: PerformanceSummary
    result: Optional[SimulationResult]
    wall_seconds: float
    from_cache: bool
    seed: int


def make_cell_task(
    index: int,
    scenario,
    policy,
    scheduler,
    config: SimulationConfig,
    keep_result: bool = False,
) -> CellTask:
    """Freeze one grid cell into a :class:`CellTask`.

    The cell's child seed is derived from ``config.seed`` and the cell
    identity (scenario name + seed, policy name, scheduler name) — not
    from call order — so two cells sharing a scenario but differing in
    policy never share a random stream, and re-running one cell alone
    reproduces its grid result exactly.
    """
    scheduler_name = scheduler.name if scheduler is not None else "RoundRobin"
    cell_id = f"{scenario.name}#{scenario.seed}|{policy.name}|{scheduler_name}"
    cell_config = replace(config, seed=derive_cell_seed(config.seed, cell_id))
    return CellTask(
        index=index,
        scenario=scenario,
        policy=policy,
        scheduler=scheduler,
        config=cell_config,
        cell_id=cell_id,
        cache_key=cell_cache_key(scenario, policy, scheduler, cell_config),
        keep_result=keep_result,
    )


def _simulate_task(task: CellTask) -> Tuple[int, PerformanceSummary, Optional[SimulationResult], float]:
    """Worker entry point: run one cell and time it.

    Module-level (not a closure) so it pickles into pool workers.
    """
    start = time.perf_counter()
    result = run_simulation(
        task.scenario.trace,
        task.scenario.cluster,
        policy=task.policy,
        initial_scheduler=task.scheduler,
        config=task.config,
    )
    wall = time.perf_counter() - start
    summary = summarize(result)
    return task.index, summary, result if task.keep_result else None, wall


def _outcome(task: CellTask, summary, result, wall: float, from_cache: bool) -> CellOutcome:
    return CellOutcome(
        index=task.index,
        scenario_name=task.scenario.name,
        policy_name=task.policy.name,
        scheduler_name=summary.scheduler_name,
        summary=summary,
        result=result,
        wall_seconds=wall,
        from_cache=from_cache,
        seed=task.config.seed,
    )


def _is_picklable(task: CellTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except Exception:
        return False


def _cell_error(
    task: CellTask, exc: BaseException, completed: Sequence[CellOutcome]
) -> ExperimentExecutionError:
    scheduler_name = task.scheduler.name if task.scheduler is not None else "RoundRobin"
    return ExperimentExecutionError(
        task.scenario.name,
        task.policy.name,
        scheduler_name,
        exc,
        completed_cells=tuple(sorted(completed, key=lambda o: o.index)),
    )


def execute_cells(
    tasks: Sequence[CellTask],
    n_workers: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
) -> List[CellOutcome]:
    """Execute a batch of cells and return outcomes in grid order.

    Args:
        tasks: the cells, as built by :func:`make_cell_task`.
        n_workers: process-pool width; ``1`` runs everything serially
            in-process (no pool, no pickling).
        cache: optional result cache consulted before any simulation and
            updated after every fresh one.
        timeout: optional overall wait bound for the parallel pool.
        progress: optional callable invoked with each
            :class:`CellOutcome` as it completes — cache hits included,
            parallel cells as their futures resolve (completion order,
            not grid order).  If it has an ``add_total(count)`` method,
            that is called first with this batch's size (so reporters
            can show done/total across multiple batches).

    Raises:
        ExperimentExecutionError: when any cell fails; carries every
            cell completed before the failure.
        ConfigurationError: for a non-positive ``n_workers``.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if progress is not None:
        add_total = getattr(progress, "add_total", None)
        if add_total is not None:
            add_total(len(tasks))
    outcomes: Dict[int, CellOutcome] = {}
    pending: List[CellTask] = []

    def record(outcome: CellOutcome) -> None:
        outcomes[outcome.index] = outcome
        if progress is not None:
            progress(outcome)

    for task in tasks:
        entry = cache.get(task.cache_key) if cache and task.cache_key else None
        if entry is not None and (not task.keep_result or entry.get("result") is not None):
            load_wall = entry.get("wall_seconds", 0.0)
            record(
                _outcome(
                    task,
                    entry["summary"],
                    entry.get("result") if task.keep_result else None,
                    load_wall,
                    from_cache=True,
                )
            )
            continue
        if entry is not None:
            # present but missing the raw result this caller needs:
            # recompute (and overwrite below); keep the stats honest.
            cache.stats.hits -= 1
            cache.stats.misses += 1
        pending.append(task)

    def finish(task: CellTask, summary, result, wall: float) -> None:
        if cache is not None and task.cache_key:
            cache.put(
                task.cache_key,
                {"summary": summary, "result": result, "wall_seconds": wall},
            )
        record(_outcome(task, summary, result, wall, from_cache=False))

    if n_workers == 1 or len(pending) <= 1:
        for task in pending:
            try:
                _, summary, result, wall = _simulate_task(task)
            except Exception as exc:
                raise _cell_error(task, exc, list(outcomes.values())) from exc
            finish(task, summary, result, wall)
        return [outcomes[t.index] for t in tasks]

    poolable = [t for t in pending if _is_picklable(t)]
    hostile = [t for t in pending if t.index not in {p.index for p in poolable}]

    if poolable:
        with ProcessPoolExecutor(max_workers=min(n_workers, len(poolable))) as pool:
            future_tasks = {pool.submit(_simulate_task, t): t for t in poolable}
            remaining = set(future_tasks)
            try:
                # as_completed (rather than a single wait()) surfaces
                # each cell to the progress callback as soon as its
                # future resolves, instead of in one burst at the end.
                for future in as_completed(future_tasks, timeout=timeout):
                    remaining.discard(future)
                    task = future_tasks[future]
                    exc = future.exception()
                    if exc is not None:
                        for unfinished in remaining:
                            unfinished.cancel()
                        raise _cell_error(
                            task, exc, list(outcomes.values())
                        ) from exc
                    _, summary, result, wall = future.result()
                    finish(task, summary, result, wall)
            except TimeoutError:
                for unfinished in remaining:
                    unfinished.cancel()
                stuck = next(iter(remaining))
                raise _cell_error(
                    future_tasks[stuck],
                    TimeoutError(f"cell did not finish within {timeout}s"),
                    list(outcomes.values()),
                ) from None

    # pickling-hostile cells run serially in this process, after the
    # pool batch so a pool failure cannot lose their results.
    for task in hostile:
        try:
            _, summary, result, wall = _simulate_task(task)
        except Exception as exc:
            raise _cell_error(task, exc, list(outcomes.values())) from exc
        finish(task, summary, result, wall)

    return [outcomes[t.index] for t in tasks]
