"""Multi-seed replication of the paper experiments.

The paper evaluates a single trace realisation (the one busy week its
operators selected).  A synthetic reproduction can do better: rerun the
same experiment across independently generated workloads and report the
mean and a confidence interval for every metric, separating the
strategies' real effects from workload noise.  This is how the
benchmark assertions' robustness was established.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.policy import ReschedulingPolicy
from ..errors import ConfigurationError
from ..metrics.summary import PerformanceSummary, summarize
from ..schedulers.initial import InitialScheduler, RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..simulator.simulation import run_simulation
from ..workload.scenarios import Scenario, busy_week
from . import presets

__all__ = ["MetricEstimate", "ReplicatedComparison", "replicate"]

#: two-sided 95% t critical values for small sample sizes (df -> t).
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
}


def _t_critical(df: int) -> float:
    if df <= 0:
        return float("inf")
    return _T_95.get(df, 1.96)


@dataclass(frozen=True)
class MetricEstimate:
    """Mean and 95% confidence half-width of one metric across seeds.

    Attributes:
        mean: sample mean.
        half_width: 95% CI half width (t-distribution, small samples).
        samples: the per-seed values.
    """

    mean: float
    half_width: float
    samples: Tuple[float, ...]

    @property
    def low(self) -> float:
        """Lower bound of the 95% interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the 95% interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.half_width:.1f}"


def _estimate(values: Sequence[float]) -> MetricEstimate:
    count = len(values)
    mean = sum(values) / count
    if count < 2:
        return MetricEstimate(mean=mean, half_width=0.0, samples=tuple(values))
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    half = _t_critical(count - 1) * math.sqrt(variance / count)
    return MetricEstimate(mean=mean, half_width=half, samples=tuple(values))


#: metric name -> extractor over PerformanceSummary.
_METRICS: Dict[str, Callable[[PerformanceSummary], Optional[float]]] = {
    "suspend_rate_pct": lambda s: s.suspend_rate * 100.0,
    "avg_ct_suspended": lambda s: s.avg_ct_suspended,
    "avg_ct_all": lambda s: s.avg_ct_all,
    "avg_st": lambda s: s.avg_st,
    "avg_wct": lambda s: s.avg_wct,
}


@dataclass(frozen=True)
class ReplicatedComparison:
    """Per-strategy metric estimates across seeds.

    Attributes:
        seeds: the workload seeds replicated over.
        estimates: strategy name -> metric name -> estimate.
    """

    seeds: Tuple[int, ...]
    estimates: Dict[str, Dict[str, MetricEstimate]]

    def strategy_names(self) -> List[str]:
        """The strategies, in run order."""
        return list(self.estimates)

    def render(self) -> str:
        """A table of mean ± CI per strategy and metric."""
        metrics = list(_METRICS)
        header = f"{'Strategy':<18}" + "".join(f"{m:>22}" for m in metrics)
        lines = [f"replicated over seeds {list(self.seeds)}", header, "-" * len(header)]
        for strategy, by_metric in self.estimates.items():
            cells = []
            for metric in metrics:
                estimate = by_metric.get(metric)
                cells.append(f"{str(estimate) if estimate else '-':>22}")
            lines.append(f"{strategy:<18}" + "".join(cells))
        return "\n".join(lines)

    def significantly_better(
        self, challenger: str, incumbent: str, metric: str = "avg_wct"
    ) -> bool:
        """Whether ``challenger``'s 95% interval sits wholly below
        ``incumbent``'s on ``metric`` (lower is better)."""
        a = self.estimates[challenger][metric]
        b = self.estimates[incumbent][metric]
        return a.high < b.low


def replicate(
    policy_factories: Sequence[Callable[[], ReschedulingPolicy]],
    scenario_factory: Callable[[float, int], Scenario] = busy_week,
    seeds: Sequence[int] = (2010, 2011, 2012, 2013, 2014),
    scale: Optional[float] = None,
    scheduler_factory: Callable[[], InitialScheduler] = RoundRobinScheduler,
    config: Optional[SimulationConfig] = None,
) -> ReplicatedComparison:
    """Run each policy on an independent workload per seed.

    Args:
        policy_factories: builders for the strategies (fresh per run).
        scenario_factory: ``(scale, seed) -> Scenario``; defaults to the
            busy week.
        seeds: workload seeds; each produces an independent trace and
            cluster realisation.
        scale: cluster scale (defaults to the experiment preset).
        scheduler_factory: fresh initial scheduler per run.
        config: simulation config shared across runs.
    """
    if not policy_factories:
        raise ConfigurationError("replicate needs at least one policy factory")
    if not seeds:
        raise ConfigurationError("replicate needs at least one seed")
    resolved_scale = scale or presets.table_scale()
    run_config = config or SimulationConfig(strict=False, record_samples=False)

    per_strategy: Dict[str, Dict[str, List[float]]] = {}
    order: List[str] = []
    for seed in seeds:
        scenario = scenario_factory(resolved_scale, seed)
        for factory in policy_factories:
            policy = factory()
            result = run_simulation(
                scenario.trace,
                scenario.cluster,
                policy=policy,
                initial_scheduler=scheduler_factory(),
                config=run_config,
            )
            summary = summarize(result)
            if policy.name not in per_strategy:
                per_strategy[policy.name] = {m: [] for m in _METRICS}
                order.append(policy.name)
            for metric, extract in _METRICS.items():
                value = extract(summary)
                if value is not None:
                    per_strategy[policy.name][metric].append(value)

    estimates: Dict[str, Dict[str, MetricEstimate]] = {}
    for strategy in order:
        estimates[strategy] = {
            metric: _estimate(values)
            for metric, values in per_strategy[strategy].items()
            if values
        }
    return ReplicatedComparison(seeds=tuple(seeds), estimates=estimates)
