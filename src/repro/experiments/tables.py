"""One function per table in the paper's evaluation (Section 3).

Each ``tableN()`` reproduces the corresponding experiment end to end —
scenario construction, one simulation per strategy, summary — and
returns a :class:`~repro.analysis.comparison.StrategyComparison` whose
rows line up with the paper's table rows.  ``render`` turns it into the
paper's column layout.

Mapping (see DESIGN.md section 4 and EXPERIMENTS.md for
paper-vs-measured values):

=========  =================================================================
Table 1    normal load, round-robin initial, {NoRes, ResSusUtil, ResSusRand}
Table 2    high load (cores halved), round-robin initial, same strategies
Table 3    high load, utilization-based initial, same strategies
Table 4    high load, round-robin initial, {NoRes, ResSusWaitUtil,
           ResSusWaitRand}
Table 5    high load, utilization-based initial, same as Table 4
(in-text)  the high-suspension scenario of Section 3.2.1
=========  =================================================================
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..analysis.comparison import StrategyComparison, compare_strategies
from ..core.policies import (
    no_res,
    res_sus_rand,
    res_sus_util,
    res_sus_wait_rand,
    res_sus_wait_util,
)
from ..policies import policy_from_spec
from ..metrics.report import render_table
from ..schedulers.initial import (
    InitialScheduler,
    RoundRobinScheduler,
    UtilizationBasedScheduler,
)
from ..simulator.config import SimulationConfig
from ..workload.scenarios import Scenario, busy_week, high_load, high_suspension
from . import presets
from .cache import open_cache

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "high_suspension_experiment",
    "render",
]

#: Strategy sets as the paper's tables list them.
_SUSPENDED_ONLY = (no_res, res_sus_util, res_sus_rand)
_WITH_WAITING = (no_res, res_sus_wait_util, res_sus_wait_rand)


def _run(
    scenario: Scenario,
    policy_factories,
    scheduler_factory: Callable[[], InitialScheduler],
    config: Optional[SimulationConfig],
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
) -> StrategyComparison:
    """Shared execution path for all tables.

    ``workers``/``cache_dir``/``use_cache`` default to the environment
    (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``), so
    the benchmark suite and CI parallelize and memoize without touching
    each call site.

    ``policy_factories`` entries may be zero-arg factories or registry
    spec strings (``"dfrs:share=0.5"``); strings resolve with the
    scenario's ``wait_threshold`` as the default.
    """
    policies = [
        policy_from_spec(
            entry, defaults={"wait_threshold": scenario.wait_threshold}
        )
        if isinstance(entry, str)
        else entry()
        for entry in policy_factories
    ]
    return compare_strategies(
        scenario,
        policies,
        scheduler_factory=scheduler_factory,
        config=config or SimulationConfig(strict=False),
        n_workers=workers if workers is not None else presets.workers(),
        cache=open_cache(cache_dir, use_cache),
        progress=progress,
    )


def table1(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    policies: Optional[Sequence] = None,
) -> StrategyComparison:
    """Table 1: rescheduling of suspended jobs under normal load (RR initial)."""
    scenario = busy_week(scale or presets.table_scale(), seed or presets.seed())
    return _run(
        scenario, policies or _SUSPENDED_ONLY, RoundRobinScheduler, config,
        workers, cache_dir, use_cache, progress,
    )


def table2(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    policies: Optional[Sequence] = None,
) -> StrategyComparison:
    """Table 2: the same strategies under high load (cores halved)."""
    scenario = high_load(scale or presets.table_scale(), seed or presets.seed())
    return _run(
        scenario, policies or _SUSPENDED_ONLY, RoundRobinScheduler, config,
        workers, cache_dir, use_cache, progress,
    )


def table3(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    policies: Optional[Sequence] = None,
) -> StrategyComparison:
    """Table 3: high load with the utilization-based initial scheduler."""
    scenario = high_load(scale or presets.table_scale(), seed or presets.seed())
    return _run(
        scenario, policies or _SUSPENDED_ONLY, UtilizationBasedScheduler, config,
        workers, cache_dir, use_cache, progress,
    )


def table4(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    policies: Optional[Sequence] = None,
) -> StrategyComparison:
    """Table 4: waiting-job + suspended-job rescheduling, RR initial, high load."""
    scenario = high_load(scale or presets.table_scale(), seed or presets.seed())
    return _run(
        scenario, policies or _WITH_WAITING, RoundRobinScheduler, config,
        workers, cache_dir, use_cache, progress,
    )


def table5(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    policies: Optional[Sequence] = None,
) -> StrategyComparison:
    """Table 5: waiting-job + suspended-job rescheduling, util-based initial."""
    scenario = high_load(scale or presets.table_scale(), seed or presets.seed())
    return _run(
        scenario, policies or _WITH_WAITING, UtilizationBasedScheduler, config,
        workers, cache_dir, use_cache, progress,
    )


def high_suspension_experiment(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    policies: Optional[Sequence] = None,
) -> StrategyComparison:
    """The in-text high-suspension experiment of Section 3.2.1.

    The paper engineered a trace with a ~14% suspend rate and reports a
    7% AvgCT reduction over all jobs and 44% over suspended jobs for
    ResSusUtil; this runs {NoRes, ResSusUtil} on our heavy-burst trace.
    """
    scenario = high_suspension(scale or presets.table_scale(), seed or presets.seed())
    return _run(
        scenario, policies or (no_res, res_sus_util), RoundRobinScheduler, config,
        workers, cache_dir, use_cache, progress,
    )


def render(comparison: StrategyComparison, title: str = "") -> str:
    """Render a comparison in the paper's table layout."""
    return render_table(list(comparison.summaries), title or comparison.scenario_name)
