"""Ablation experiments beyond the paper's tables.

These quantify the design choices the paper discusses but does not
evaluate numerically, plus its future-work ideas:

* :func:`selector_ablation` — the full selector family (utilization,
  random, queue length, weighted multi-metric, predicted wait) under
  the combined suspended+waiting policy; realises the future-work idea
  of "multiple metrics ... in combination".
* :func:`threshold_sweep` — sensitivity of the waiting-job policy to
  its threshold (the paper fixes 30 minutes ≈ 2x the average wait).
* :func:`overhead_sweep` — how restart costs ("transferring large
  amount of data and job binaries") erode rescheduling's benefit; the
  paper's planned "network delays and other rescheduling associated
  overheads" simulator improvement.
* :func:`duplication_ablation` — restart-based rescheduling versus the
  future-work job-duplication and checkpoint-migration techniques.
* :func:`migration_ablation` — the Condor/VM-migration alternative the
  paper rejects on overhead grounds (Section 2.3), swept across
  virtualisation penalties so the crossover against restart is visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.comparison import StrategyComparison, compare_strategies
from ..core.overheads import RestartOverhead
from ..core.policies import (
    DuplicateSuspended,
    MigrateSuspended,
    NoRescheduling,
    RescheduleSuspended,
    RescheduleSuspendedAndWaiting,
)
from ..core.selectors import (
    LowestUtilizationSelector,
    PoolSelector,
    PredictedWaitSelector,
    RandomSelector,
    ShortestQueueSelector,
    WeightedSelector,
)
from ..metrics.summary import PerformanceSummary, summarize
from ..schedulers.initial import RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..simulator.simulation import run_simulation
from ..workload.scenarios import Scenario, high_load
from . import presets

__all__ = [
    "selector_ablation",
    "threshold_sweep",
    "overhead_sweep",
    "duplication_ablation",
    "migration_ablation",
    "SELECTOR_FAMILY",
]


def _default_scenario(scale: Optional[float], seed: Optional[int]) -> Scenario:
    return high_load(scale or presets.table_scale(), seed or presets.seed())


def SELECTOR_FAMILY() -> List[Tuple[str, PoolSelector]]:
    """The named selector family used by :func:`selector_ablation`."""
    return [
        ("util", LowestUtilizationSelector()),
        ("random", RandomSelector()),
        ("queue", ShortestQueueSelector()),
        ("weighted", WeightedSelector()),
        ("predicted", PredictedWaitSelector()),
    ]


def selector_ablation(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    wait_threshold: float = 30.0,
) -> StrategyComparison:
    """Combined rescheduling with every selector, NoRes baseline first."""
    scenario = _default_scenario(scale, seed)
    policies = [NoRescheduling()]
    for name, selector in SELECTOR_FAMILY():
        policies.append(
            RescheduleSuspendedAndWaiting(
                selector, wait_threshold, name=f"ResSusWait[{name}]"
            )
        )
    return compare_strategies(
        scenario,
        policies,
        scheduler_factory=RoundRobinScheduler,
        config=SimulationConfig(strict=False),
    )


def threshold_sweep(
    thresholds: Tuple[float, ...] = (10.0, 30.0, 60.0, 120.0, 480.0),
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> StrategyComparison:
    """ResSusWaitUtil across waiting thresholds, NoRes baseline first."""
    scenario = _default_scenario(scale, seed)
    policies = [NoRescheduling()]
    for threshold in thresholds:
        policies.append(
            RescheduleSuspendedAndWaiting(
                LowestUtilizationSelector(),
                threshold,
                name=f"ResSusWaitUtil[{threshold:g}m]",
            )
        )
    return compare_strategies(
        scenario,
        policies,
        scheduler_factory=RoundRobinScheduler,
        config=SimulationConfig(strict=False),
    )


def overhead_sweep(
    fixed_minutes: Tuple[float, ...] = (0.0, 15.0, 60.0, 240.0),
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> Dict[float, PerformanceSummary]:
    """ResSusUtil under increasing restart overheads.

    Returns a map from fixed overhead minutes to the run's summary; the
    0.0 entry is the paper's free-restart assumption.
    """
    scenario = _default_scenario(scale, seed)
    summaries: Dict[float, PerformanceSummary] = {}
    for fixed in fixed_minutes:
        policy = RescheduleSuspended(
            LowestUtilizationSelector(), name=f"ResSusUtil[+{fixed:g}m]"
        )
        result = run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            initial_scheduler=RoundRobinScheduler(),
            config=SimulationConfig(
                strict=False, restart_overhead=RestartOverhead(fixed_minutes=fixed)
            ),
        )
        summaries[fixed] = summarize(result)
    return summaries


def migration_ablation(
    dilations: Tuple[float, ...] = (0.0, 0.15, 0.30),
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> Dict[float, PerformanceSummary]:
    """Checkpoint migration under increasing virtualisation overheads.

    The paper rejects VM migration for NetBatch because running chip
    simulations on virtualised hosts costs 10-20% (Section 2.3).  This
    ablation quantifies the trade-off it alludes to: migration keeps a
    suspended job's progress (no restart waste) but dilates all
    remaining work by the given fraction.  The returned map goes from
    dilation fraction to the run's summary; compare against
    :func:`duplication_ablation`'s restart-based rows.
    """
    scenario = _default_scenario(scale, seed)
    summaries: Dict[float, PerformanceSummary] = {}
    for dilation in dilations:
        policy = MigrateSuspended(
            LowestUtilizationSelector(), name=f"MigSusUtil[{dilation * 100:g}%]"
        )
        result = run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            initial_scheduler=RoundRobinScheduler(),
            config=SimulationConfig(strict=False, migration_dilation=dilation),
        )
        summaries[dilation] = summarize(result)
    return summaries


def duplication_ablation(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> StrategyComparison:
    """NoRes vs restart-based vs duplication-based suspended rescheduling."""
    scenario = _default_scenario(scale, seed)
    policies = [
        NoRescheduling(),
        RescheduleSuspended(LowestUtilizationSelector(), name="ResSusUtil"),
        DuplicateSuspended(LowestUtilizationSelector(), name="DupSusUtil"),
        MigrateSuspended(LowestUtilizationSelector(), name="MigSusUtil"),
    ]
    return compare_strategies(
        scenario,
        policies,
        scheduler_factory=RoundRobinScheduler,
        config=SimulationConfig(strict=False),
    )
