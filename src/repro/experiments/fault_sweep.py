"""The fault-injection sweep: rescheduling policies under machine churn.

The paper evaluates rescheduling on a platform it assumes to be
reliable.  This experiment drops that assumption: the same busy-week
workload is replayed while machines crash and recover as a renewal
process (exponential MTBF/MTTR via
:meth:`repro.faults.FaultConfig.with_exponential_churn`), and each
rescheduling policy is scored on what actually matters under churn —
how long jobs sit suspended, how long they take end to end, and how
much already-computed work the crashes destroy.

For every (machine MTBF x policy) cell the sweep records the full
suspension-time and turnaround (completion-time) distributions as
:class:`~repro.metrics.cdf.EmpiricalCDF`, the run's
:class:`~repro.faults.FaultStats` counters, and the summary row, so the
CLI (``repro faults``) can print percentile tables per MTBF.  Like
every experiment in this repository the sweep is deterministic: same
seed, same cells, bit-identical distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.policies import (
    NoRescheduling,
    RescheduleSuspended,
    RescheduleSuspendedAndWaiting,
)
from ..core.selectors import LowestUtilizationSelector
from ..faults import FaultConfig, FaultStats
from ..metrics.cdf import EmpiricalCDF
from ..metrics.summary import PerformanceSummary, summarize
from ..schedulers.initial import RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..simulator.simulation import run_simulation
from ..workload.scenarios import Scenario, high_load
from . import presets

__all__ = ["FaultSweepCell", "FaultSweep", "fault_sweep", "FAULT_POLICY_FAMILY"]

#: Percentiles printed for each CDF column of the rendered sweep.
_RENDER_PERCENTILES = (50.0, 90.0, 99.0)


def FAULT_POLICY_FAMILY() -> List[object]:
    """The policies compared under churn: baseline plus both reschedulers."""
    return [
        NoRescheduling(),
        RescheduleSuspended(LowestUtilizationSelector(), name="ResSusUtil"),
        RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(), 30.0, name="ResSusWaitUtil"
        ),
    ]


@dataclass(frozen=True)
class FaultSweepCell:
    """One (MTBF, policy) run of the fault sweep.

    Attributes:
        mtbf_minutes: per-machine mean time between failures.
        policy_name: the rescheduling policy simulated.
        summary: the run's performance summary.
        fault_stats: the run's fault counters (crashes, kills, retries,
            lost work, goodput).
        suspension_cdf: distribution of total suspension minutes over
            completed jobs that were suspended at least once (``None``
            when no job was).
        turnaround_cdf: distribution of completion time over completed
            jobs (``None`` when nothing completed).
        failed_count: jobs that permanently failed (exhausted retries).
    """

    mtbf_minutes: float
    policy_name: str
    summary: PerformanceSummary
    fault_stats: FaultStats
    suspension_cdf: Optional[EmpiricalCDF]
    turnaround_cdf: Optional[EmpiricalCDF]
    failed_count: int


@dataclass(frozen=True)
class FaultSweep:
    """The full (MTBF x policy) grid plus rendering."""

    mtbf_minutes: Tuple[float, ...]
    mttr_minutes: float
    cells: Tuple[FaultSweepCell, ...]

    def by_mtbf(self, mtbf: float) -> List[FaultSweepCell]:
        """The cells of one MTBF column, policy order preserved."""
        return [c for c in self.cells if c.mtbf_minutes == mtbf]

    def render(self) -> str:
        """Plain-text tables: one block per MTBF, one row per policy."""
        lines = [
            "Fault-injection sweep: machine churn "
            f"(MTTR {self.mttr_minutes:g} min), per-policy suspension and "
            "turnaround percentiles (minutes)"
        ]
        header = (
            f"  {'policy':<16} {'susp-rate':>9} {'failed':>6} "
            f"{'lost-min':>9} {'goodput':>8}"
        )
        for p in _RENDER_PERCENTILES:
            header += f" {'st-p%g' % p:>8}"
        for p in _RENDER_PERCENTILES:
            header += f" {'ct-p%g' % p:>8}"
        for mtbf in self.mtbf_minutes:
            lines.append("")
            lines.append(f"MTBF {mtbf:g} min:")
            lines.append(header)
            for cell in self.by_mtbf(mtbf):
                row = (
                    f"  {cell.policy_name:<16} "
                    f"{cell.summary.suspend_rate:>9.3f} "
                    f"{cell.failed_count:>6d} "
                    f"{cell.fault_stats.lost_work_minutes:>9.1f} "
                    f"{cell.fault_stats.goodput_fraction:>8.3f}"
                )
                for p in _RENDER_PERCENTILES:
                    value = (
                        cell.suspension_cdf.percentile(p)
                        if cell.suspension_cdf is not None
                        else 0.0
                    )
                    row += f" {value:>8.1f}"
                for p in _RENDER_PERCENTILES:
                    value = (
                        cell.turnaround_cdf.percentile(p)
                        if cell.turnaround_cdf is not None
                        else 0.0
                    )
                    row += f" {value:>8.1f}"
                lines.append(row)
        return "\n".join(lines)


def _cell(scenario: Scenario, policy, mtbf: float, mttr: float, config: SimulationConfig) -> FaultSweepCell:
    result = run_simulation(
        scenario.trace,
        scenario.cluster,
        policy=policy,
        initial_scheduler=RoundRobinScheduler(),
        config=config,
    )
    completed = list(result.completed_records())
    suspended = [r for r in completed if r.was_suspended]
    return FaultSweepCell(
        mtbf_minutes=mtbf,
        policy_name=policy.name,
        summary=summarize(result),
        fault_stats=result.fault_stats,
        suspension_cdf=(
            EmpiricalCDF([r.suspend_time for r in suspended]) if suspended else None
        ),
        turnaround_cdf=(
            EmpiricalCDF([r.completion_time for r in completed]) if completed else None
        ),
        failed_count=result.failed_count(),
    )


def fault_sweep(
    mtbf_minutes: Optional[Sequence[float]] = None,
    mttr_minutes: Optional[float] = None,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    job_failure_probability: float = 0.0,
) -> FaultSweep:
    """Run the (machine MTBF x policy) fault grid; deterministic per seed.

    Args:
        mtbf_minutes: MTBF values to sweep; defaults to
            :func:`repro.experiments.presets.fault_mtbfs`.
        mttr_minutes: mean repair time; defaults to
            :func:`repro.experiments.presets.fault_mttr`.
        scale: cluster/workload scale (default: table preset).
        seed: workload seed (default: preset seed).
        job_failure_probability: additional per-execution-segment
            transient job failure probability (retried with backoff).
    """
    mtbfs = tuple(mtbf_minutes if mtbf_minutes is not None else presets.fault_mtbfs())
    mttr = mttr_minutes if mttr_minutes is not None else presets.fault_mttr()
    scenario = high_load(scale or presets.table_scale(), seed or presets.seed())
    cells: List[FaultSweepCell] = []
    for mtbf in mtbfs:
        faults = FaultConfig.with_exponential_churn(
            mtbf, mttr, job_failure_probability=job_failure_probability
        )
        config = SimulationConfig(strict=False, faults=faults)
        for policy in FAULT_POLICY_FAMILY():
            cells.append(_cell(scenario, policy, mtbf, mttr, config))
    return FaultSweep(mtbf_minutes=mtbfs, mttr_minutes=mttr, cells=tuple(cells))
