"""Grid checkpoint/resume for long experiment sweeps.

A :class:`GridCheckpoint` is a single self-verifying file that records
every completed cell of one grid run.  If the run is killed — machine
reboot, OOM, Ctrl-C — relaunching with the same checkpoint path picks
up where it left off: completed cells are served from the file and only
the remainder is simulated.

The file sits *on top of* the content-addressed result cache, not in
place of it: the cache is shared, keyed by content and may be disabled;
the checkpoint belongs to one grid invocation and is consulted even
when caching is off.  Entries carry the cell's cache key and are only
served back when it still matches, so editing a config between launch
and resume can never smuggle in stale results; cells that are not
cacheable (live instrumentation) are not checkpointed either, for the
same reason they are not cached.

The envelope mirrors the result cache: a magic header, a SHA-256
digest, and a pickled payload salted with the engine version.  A
truncated, corrupted or version-mismatched file is indistinguishable
from an empty one — resume degrades to recompute, never to wrong
results.  All rewrites are atomic (:mod:`repro.fsutil`).
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..fsutil import atomic_write_bytes
from .cache import engine_salt

__all__ = ["GridCheckpoint"]

_MAGIC = b"repro-checkpoint-v1\n"


class GridCheckpoint:
    """One grid run's completed-cell journal, resumable across processes."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = self._load()

    def _load(self) -> Dict[str, Dict[str, Any]]:
        try:
            blob = self.path.read_bytes()
        except OSError:
            return {}
        if not blob.startswith(_MAGIC):
            return {}
        body = blob[len(_MAGIC):]
        digest, _, payload = body.partition(b"\n")
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            return {}  # truncated or corrupted write: start over
        try:
            decoded = pickle.loads(payload)
        except Exception:
            return {}
        if decoded.get("salt") != engine_salt():
            return {}  # a different engine version computed these cells
        entries = decoded.get("entries")
        return entries if isinstance(entries, dict) else {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, cell_id: str, cache_key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The recorded payload for ``cell_id``, or ``None``.

        Only served when the entry's cache key matches ``cache_key`` —
        a changed scenario/policy/config invalidates the entry.
        """
        entry = self._entries.get(cell_id)
        if entry is None or entry.get("cache_key") != cache_key:
            return None
        return entry

    def put(self, cell_id: str, cache_key: str, payload: Dict[str, Any]) -> None:
        """Record a completed cell and flush the file atomically."""
        entry = dict(payload)
        entry["cache_key"] = cache_key
        self._entries[cell_id] = entry
        body = pickle.dumps(
            {"salt": engine_salt(), "entries": self._entries},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        atomic_write_bytes(self.path, _MAGIC + digest + b"\n" + body)

    def __repr__(self) -> str:
        return f"GridCheckpoint({self.path}, cells={len(self._entries)})"
