"""Paper experiments: one entry point per table and figure, plus ablations."""

from .ablations import (
    duplication_ablation,
    migration_ablation,
    overhead_sweep,
    selector_ablation,
    threshold_sweep,
)
from .figures import Figure2, Figure4, figure2, figure3, figure4, render_figure3
from .replication import MetricEstimate, ReplicatedComparison, replicate
from .runner import ExperimentCell, ExperimentRunner
from .tables import (
    high_suspension_experiment,
    render,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "duplication_ablation",
    "migration_ablation",
    "overhead_sweep",
    "selector_ablation",
    "threshold_sweep",
    "Figure2",
    "Figure4",
    "figure2",
    "figure3",
    "figure4",
    "render_figure3",
    "MetricEstimate",
    "ReplicatedComparison",
    "replicate",
    "ExperimentCell",
    "ExperimentRunner",
    "high_suspension_experiment",
    "render",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
