"""Paper experiments: one entry point per table and figure, plus ablations.

Grid execution runs through a shared backend supporting process-pool
parallelism (:mod:`repro.experiments.parallel`) and a content-addressed
on-disk result cache (:mod:`repro.experiments.cache`); every entry
point honours ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE`` (see ``docs/performance.md``).
"""

from .ablations import (
    duplication_ablation,
    migration_ablation,
    overhead_sweep,
    selector_ablation,
    threshold_sweep,
)
from .cache import CacheStats, ResultCache, derive_cell_seed, open_cache
from .checkpoint import GridCheckpoint
from .fault_sweep import FaultSweep, FaultSweepCell, fault_sweep
from .figures import Figure2, Figure4, figure2, figure3, figure4, render_figure3
from .parallel import (
    CellFailure,
    CellOutcome,
    CellTask,
    GridReport,
    execute_cells,
    make_cell_task,
    run_grid_parallel,
)
from .replication import MetricEstimate, ReplicatedComparison, replicate
from .runner import ExperimentCell, ExperimentRunner
from .tables import (
    high_suspension_experiment,
    render,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "duplication_ablation",
    "migration_ablation",
    "overhead_sweep",
    "selector_ablation",
    "threshold_sweep",
    "Figure2",
    "Figure4",
    "figure2",
    "figure3",
    "figure4",
    "render_figure3",
    "CacheStats",
    "ResultCache",
    "derive_cell_seed",
    "open_cache",
    "GridCheckpoint",
    "FaultSweep",
    "FaultSweepCell",
    "fault_sweep",
    "CellFailure",
    "CellOutcome",
    "CellTask",
    "GridReport",
    "execute_cells",
    "make_cell_task",
    "run_grid_parallel",
    "MetricEstimate",
    "ReplicatedComparison",
    "replicate",
    "ExperimentCell",
    "ExperimentRunner",
    "high_suspension_experiment",
    "render",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
