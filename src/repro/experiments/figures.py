"""One function per figure in the paper (Figures 2-4).

Each ``figureN()`` regenerates the figure's underlying data series from
a fresh simulation and returns both the analysis object and a plain-text
rendering, so the benchmark harness can print the same series the paper
plots.  (The figures are data products — no plotting dependency is
needed to compare shapes.)

Like the tables, every figure accepts ``workers`` / ``cache_dir`` /
``use_cache`` (defaulting to ``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE``) and runs through the shared execution backend, so
long-horizon figure runs are memoized on disk and Figure 3's three
simulations can run in parallel.  Figure caching stores the full
simulation result (records *and* samples): the first run of a given
configuration pays the simulation, later ones only unpickle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..analysis.suspension import SuspensionAnalysis, analyze_suspension, suspension_time_cdf
from ..analysis.utilization import UtilizationAnalysis, analyze_utilization
from ..analysis.waste import WasteFigure, waste_decomposition
from ..core.policies import no_res, res_sus_rand, res_sus_util
from ..metrics.report import render_waste_components
from ..schedulers.initial import RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..workload.scenarios import busy_week, year
from . import presets
from .cache import open_cache
from .parallel import execute_cells, make_cell_task

__all__ = [
    "Figure2",
    "Figure4",
    "figure2",
    "figure3",
    "figure4",
]


def _run_figure_cells(scenario, policies, workers, cache_dir, use_cache, progress=None):
    """Run one figure's simulations through the shared backend.

    Returns the full simulation results, in ``policies`` order.
    """
    tasks = [
        make_cell_task(
            index,
            scenario,
            policy,
            RoundRobinScheduler(),
            SimulationConfig(strict=False),
            keep_result=True,
        )
        for index, policy in enumerate(policies)
    ]
    outcomes = execute_cells(
        tasks,
        n_workers=workers if workers is not None else presets.workers(),
        cache=open_cache(cache_dir, use_cache),
        progress=progress,
    )
    return [outcome.result for outcome in outcomes]


@dataclass(frozen=True)
class Figure2:
    """Figure 2's data: the suspension-time CDF and headline stats."""

    analysis: SuspensionAnalysis
    cdf_points: Tuple[Tuple[float, float], ...]

    def render(self) -> str:
        """Plain-text rendering: stats then a 20-point CDF table."""
        lines = ["Figure 2: CDF of job suspension time (minutes)"]
        for label, value in self.analysis.rows():
            lines.append(f"  {label:<28} {value:>10.1f}")
        lines.append(f"  {'CDF(minutes -> fraction)':<28}")
        for value, fraction in self.cdf_points:
            lines.append(f"    {value:>10.1f} -> {fraction:>6.3f}")
        return "\n".join(lines)


def figure2(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    horizon: Optional[float] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
) -> Figure2:
    """Figure 2: suspension-time CDF from a long-horizon NoRes run."""
    scenario = year(
        scale=scale or presets.year_scale(),
        seed=seed or presets.seed(),
        horizon=horizon or presets.year_horizon(),
    )
    (result,) = _run_figure_cells(
        scenario, [no_res()], workers, cache_dir, use_cache, progress
    )
    cdf = suspension_time_cdf(result)
    return Figure2(
        analysis=analyze_suspension(result),
        cdf_points=tuple(cdf.points(count=20)),
    )


def figure3(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
) -> WasteFigure:
    """Figure 3: waste decomposition under normal load (busy week, RR).

    Three bars — NoRes, ResSusUtil, ResSusRand — each split into wait,
    suspend, and rescheduling waste.
    """
    scenario = busy_week(scale or presets.table_scale(), seed or presets.seed())
    results = _run_figure_cells(
        scenario,
        [no_res(), res_sus_util(), res_sus_rand()],
        workers,
        cache_dir,
        use_cache,
        progress,
    )
    return waste_decomposition(results)


def render_figure3(figure: WasteFigure) -> str:
    """Plain-text rendering of Figure 3 (stacked-bar values)."""
    return render_waste_components(
        figure.summaries, "Figure 3: average wasted completion time components"
    )


@dataclass(frozen=True)
class Figure4:
    """Figure 4's data: windowed utilization and suspension series."""

    analysis: UtilizationAnalysis

    def render(self, max_rows: int = 40) -> str:
        """Plain-text rendering: headline stats plus a down-sampled series."""
        a = self.analysis
        lines = [
            "Figure 4: suspension and utilization over the horizon",
            f"  mean utilization            {a.mean_utilization_pct:>8.1f}%",
            f"  p10..p90 utilization        {a.p10_utilization_pct:>8.1f}%"
            f" .. {a.p90_utilization_pct:.1f}%",
            f"  peak suspended jobs         {a.peak_suspended_jobs:>8.1f}",
            f"  suspension while <60% util  {a.suspension_while_underutilized * 100:>8.1f}%",
            f"  {'window_start':>14} {'util%':>7} {'suspended':>10}",
        ]
        points = a.points
        step = max(1, len(points) // max_rows)
        for point in points[::step]:
            lines.append(
                f"  {point.window_start:>14.0f} {point.utilization * 100:>7.1f} "
                f"{point.suspended_jobs:>10.1f}"
            )
        return "\n".join(lines)


def figure4(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    horizon: Optional[float] = None,
    window_minutes: float = 100.0,
    workers: Optional[int] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
) -> Figure4:
    """Figure 4: utilization & suspension over a long-horizon NoRes run.

    The analysis is clipped to the submission horizon: the paper's
    year-long window is a continuously-fed system, while our simulator
    runs on past the horizon until the last straggler completes.
    """
    resolved_horizon = horizon or presets.year_horizon()
    scenario = year(
        scale=scale or presets.year_scale(),
        seed=seed or presets.seed(),
        horizon=resolved_horizon,
    )
    (result,) = _run_figure_cells(
        scenario, [no_res()], workers, cache_dir, use_cache, progress
    )
    return Figure4(
        analysis=analyze_utilization(
            result, window_minutes, up_to_minute=resolved_horizon
        )
    )
