"""Content-addressed on-disk cache for experiment results.

Sweeping the paper's (scenario x policy x scheduler) grids recomputes
identical multi-second simulations on every invocation.  This module
memoizes those runs: a cell's output (its
:class:`~repro.metrics.summary.PerformanceSummary`, optionally the full
:class:`~repro.simulator.results.SimulationResult`) is stored under a
key derived purely from the cell's *content* —

* the scenario (name, seed, and a structural fingerprint of its cluster
  and every trace job),
* the policy (class, selector, wait threshold, name),
* the initial scheduler,
* the :class:`~repro.simulator.config.SimulationConfig` (every field
  except the observer; configs with an observer attached are never
  cached because observers have side effects),
* an engine-version salt (:func:`engine_salt`), so upgrading the
  simulator invalidates every stale entry at once.

Because the key is content-addressed, any change to any input — one
extra trace job, a different wait threshold, a new package version —
misses the cache and recomputes; identical reruns hit it and return in
milliseconds.

Entries are self-verifying: each file carries a magic header and a
SHA-256 digest of its payload.  A corrupt, truncated, or undeserializable
entry is detected on load, evicted from disk, and reported as a miss so
the caller transparently recomputes (see ``tests/test_cache.py`` for
the hygiene contract).

The same hashing machinery also provides :func:`derive_cell_seed`:
spawn-key-style child seeds derived from (base seed, cell identity), so
every grid cell gets an independent random stream no matter which
worker runs it, or in which order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
import weakref
from pathlib import Path
from typing import Any, Dict, Optional

from .._version import __version__
from ..errors import CacheError
from ..fsutil import atomic_write_bytes

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheDiskStats",
    "CacheGcReport",
    "CacheStats",
    "LEASE_GRACE_SECONDS",
    "ResultCache",
    "cell_cache_key",
    "derive_cell_seed",
    "engine_salt",
    "open_cache",
    "resolve_cache_dir",
    "stable_hash",
]

#: Bump when the on-disk entry layout changes (entries with another
#: schema are evicted on load).
CACHE_SCHEMA_VERSION = 1

#: File magic identifying a repro cache entry.
_MAGIC = b"repro-cache\x00"

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def engine_salt() -> str:
    """Version salt mixed into every cache key.

    Keyed on the package version: releasing a new version (which is how
    engine-semantics changes ship) invalidates all previously cached
    results, so a cache can never serve summaries produced by an older
    simulator.
    """
    return f"repro/{__version__}/schema{CACHE_SCHEMA_VERSION}"


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Dataclasses become ``[qualified-class-name, {field: value}]`` so two
    different classes with identical fields never collide; floats use
    ``repr`` for bit-exactness; unknown objects fall back to their class
    name plus ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        return [f"{type(obj).__module__}.{type(obj).__qualname__}", fields]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda i: str(i[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, float):
        return f"f:{obj!r}"
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    return [f"{type(obj).__module__}.{type(obj).__qualname__}", repr(obj)]


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical form.

    Stable across processes and Python versions (never uses the salted
    builtin ``hash``).
    """
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


#: Per-Trace fingerprint memo, keyed by object id (Trace is immutable
#: but defines value equality without hashability).  Hashing one
#: 10k-job trace once per process — instead of once per grid cell —
#: keeps cache-hit latency in the milliseconds; weakref callbacks drop
#: entries as soon as the trace itself is garbage.
_TRACE_FP_MEMO: Dict[int, tuple] = {}


def _trace_fingerprint(trace) -> str:
    """SHA-256 over every field of every job, memoized per trace object."""
    memo_key = id(trace)
    entry = _TRACE_FP_MEMO.get(memo_key)
    if entry is not None and entry[0]() is trace:
        return entry[1]
    hasher = hashlib.sha256()
    for j in trace.jobs:
        hasher.update(
            (
                f"{j.job_id}|{j.submit_minute!r}|{j.runtime_minutes!r}|{j.priority}"
                f"|{j.cores}|{j.memory_gb!r}|{j.os_family}|{j.candidate_pools}"
                f"|{j.task_id}|{j.user}\n"
            ).encode()
        )
    digest = hasher.hexdigest()
    try:
        ref = weakref.ref(trace, lambda _: _TRACE_FP_MEMO.pop(memo_key, None))
        _TRACE_FP_MEMO[memo_key] = (ref, digest)
    except TypeError:
        pass
    return digest


def _scenario_fingerprint(scenario) -> Dict[str, Any]:
    """Content fingerprint of a scenario: identity plus cluster + trace.

    Trace-replay scenarios (:class:`~repro.workload.traces.TraceScenario`)
    carry a precomputed ``trace_digest`` — a SHA-256 of the *source trace
    bytes plus the replay spec* — which already uniquely identifies the
    materialised jobs.  Using it keeps cache-key construction O(1) in
    trace size instead of re-hashing every job of a real-log replay.
    """
    digest = getattr(scenario, "trace_digest", None)
    return {
        "name": scenario.name,
        "seed": scenario.seed,
        "wait_threshold": scenario.wait_threshold,
        "cluster": stable_hash(tuple(scenario.cluster)),
        "trace": digest if digest is not None else _trace_fingerprint(scenario.trace),
    }


def _policy_fingerprint(policy) -> Dict[str, Any]:
    """Fingerprint of a policy: class, name, selector, threshold."""
    fp: Dict[str, Any] = {
        "class": f"{type(policy).__module__}.{type(policy).__qualname__}",
        "name": policy.name,
    }
    selector = getattr(policy, "selector", None) or getattr(policy, "_selector", None)
    if selector is not None:
        fp["selector"] = _canonical(selector)
    threshold = getattr(policy, "wait_threshold", None)
    if threshold is not None:
        fp["wait_threshold"] = f"f:{threshold!r}"
    return fp


def _scheduler_fingerprint(scheduler) -> Dict[str, Any]:
    """Fingerprint of an initial scheduler (``None`` = engine default)."""
    if scheduler is None:
        return {"class": "default", "name": "RoundRobin"}
    return {
        "class": f"{type(scheduler).__module__}.{type(scheduler).__qualname__}",
        "name": scheduler.name,
    }


def _config_fingerprint(config) -> Optional[Dict[str, Any]]:
    """Fingerprint of a SimulationConfig; ``None`` = not cacheable."""
    instrumentation = getattr(config, "instrumentation", None)
    if instrumentation is not None and instrumentation.enabled:
        # Observers and metrics registries consume a live event stream;
        # a cache hit would silently swallow it.
        return None
    skip = {"observer", "instrumentation"}
    faults = getattr(config, "faults", None)
    if faults is not None and not faults.enabled:
        # A disabled fault model cannot influence the result; excluding
        # it keeps cache keys bit-identical to builds without the fault
        # subsystem (and to entries written by them).
        skip.add("faults")
    fields = {
        f.name: _canonical(getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in skip
    }
    return fields


def cell_cache_key(scenario, policy, scheduler, config) -> Optional[str]:
    """Content-addressed key for one (scenario, policy, scheduler) cell.

    Returns ``None`` when the cell must not be cached (currently: the
    config carries live instrumentation — observers or a metrics
    registry — whose event stream a cache hit would silently swallow).
    """
    config_fp = _config_fingerprint(config)
    if config_fp is None:
        return None
    return stable_hash(
        {
            "salt": engine_salt(),
            "scenario": _scenario_fingerprint(scenario),
            "policy": _policy_fingerprint(policy),
            "scheduler": _scheduler_fingerprint(scheduler),
            "config": config_fp,
        }
    )


def derive_cell_seed(base_seed: int, cell_id: str) -> int:
    """Spawn-key-style child seed for one grid cell.

    The seed depends only on (base seed, cell identity) — never on call
    order or worker scheduling — so a cell's random streams are the same
    whether the grid runs serially, in any parallel interleaving, or as
    a single re-run of that one cell.  Two cells sharing a scenario but
    differing in policy or scheduler get distinct, independent streams.
    """
    digest = hashlib.sha256(f"{base_seed}|cell|{cell_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def resolve_cache_dir(cache_dir: Optional[object] = None) -> Optional[Path]:
    """Resolve the cache directory: explicit argument, else ``REPRO_CACHE_DIR``."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else None


def open_cache(
    cache_dir: Optional[object] = None, use_cache: Optional[bool] = None
) -> Optional["ResultCache"]:
    """Open the result cache per the standard resolution rules.

    ``use_cache=False`` always returns ``None``; ``use_cache=True``
    requires a directory (argument or ``REPRO_CACHE_DIR``) and raises
    otherwise; ``use_cache=None`` enables caching exactly when a
    directory is configured and ``REPRO_NO_CACHE`` is not set.
    """
    from . import presets

    if use_cache is False:
        return None
    resolved = resolve_cache_dir(cache_dir)
    if use_cache is None:
        if resolved is None or presets.no_cache():
            return None
        return ResultCache(resolved)
    if resolved is None:
        raise CacheError(
            "use_cache=True needs a cache directory (cache_dir argument or "
            f"the {CACHE_DIR_ENV} environment variable)"
        )
    return ResultCache(resolved)


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance (observable speedup evidence)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def as_line(self) -> str:
        """One-line human-readable rendering for CLI/benchmark logs."""
        return (
            f"cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), {self.evictions} eviction(s)"
        )


@dataclasses.dataclass(frozen=True)
class CacheDiskStats:
    """What one cache directory holds on disk right now."""

    entries: int
    total_bytes: int
    oldest_age_seconds: float
    newest_age_seconds: float
    lease_files: int

    def as_line(self) -> str:
        """One-line human-readable rendering for the CLI."""
        mb = self.total_bytes / (1024.0 * 1024.0)
        return (
            f"{self.entries} entr{'y' if self.entries == 1 else 'ies'}, "
            f"{mb:.1f} MB, oldest {self.oldest_age_seconds / 3600.0:.1f}h, "
            f"{self.lease_files} lease file(s)"
        )


#: A ``claimed`` fabric lease whose file was rewritten (heartbeat)
#: within this many seconds is *live*: gc must not evict its entry or
#: steal its lease, no matter what the age/size bounds say.  Generous
#: relative to worker heartbeat cadence (TTL/3) on purpose — gc racing
#: an active fleet should err toward keeping a cell.
LEASE_GRACE_SECONDS = 120.0


@dataclasses.dataclass(frozen=True)
class CacheGcReport:
    """What one :meth:`ResultCache.gc` pass did (or would do)."""

    scanned: int
    evicted: int
    bytes_freed: int
    bytes_remaining: int
    lease_files_removed: int
    dry_run: bool = False
    #: Entries/leases protected because a worker holds a live claim.
    leases_live: int = 0

    def as_line(self) -> str:
        """One-line human-readable rendering for the CLI."""
        verb = "would evict" if self.dry_run else "evicted"
        freed = self.bytes_freed / (1024.0 * 1024.0)
        kept = self.bytes_remaining / (1024.0 * 1024.0)
        line = (
            f"{verb} {self.evicted}/{self.scanned} entr"
            f"{'y' if self.evicted == 1 else 'ies'} ({freed:.1f} MB), "
            f"{kept:.1f} MB remaining, "
            f"{self.lease_files_removed} lease file(s) removed"
        )
        if self.leases_live:
            line += f", {self.leases_live} live lease(s) protected"
        return line


class ResultCache:
    """A directory of self-verifying pickled experiment results.

    Layout: ``<root>/<key[:2]>/<key>.bin`` where ``key`` is the 64-char
    hex cell key.  Each file is ``MAGIC + sha256(payload) + payload``
    with the payload a pickle of ``{"schema": .., "salt": ..,
    "value": ..}``.  Writes are atomic (temp file + ``os.replace``) so a
    crashed or concurrent writer can never publish a torn entry.

    ``<root>/leases/`` (when present) belongs to the distributed fabric
    (:mod:`repro.fabric`): one small JSON file per in-flight or
    completed work claim.  :meth:`gc` cleans both populations.
    """

    #: Subdirectory the fabric's work-claiming protocol writes into.
    LEASES_DIRNAME = "leases"

    def __init__(self, root) -> None:
        if root is None:
            raise CacheError("ResultCache needs a directory; got None")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """On-disk path of the entry for ``key``."""
        return self.root / key[:2] / f"{key}.bin"

    @property
    def leases_dir(self) -> Path:
        """Directory the fabric's lease files live in (may not exist)."""
        return self.root / self.LEASES_DIRNAME

    def get(self, key: str) -> Optional[Any]:
        """Load the value for ``key``; ``None`` (and a miss) if absent.

        A present-but-invalid entry — bad magic, checksum mismatch,
        wrong schema, stale engine salt, or an unpicklable payload — is
        evicted from disk and reported as a miss, so callers always fall
        through to recomputation instead of crashing or returning
        garbage.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        value = self._decode(blob)
        if value is None:
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        payload = pickle.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "salt": engine_salt(), "value": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, blob)
        self.stats.stores += 1

    def _decode(self, blob: bytes) -> Optional[Any]:
        """Verify and unpickle one entry; ``None`` on any defect."""
        header_len = len(_MAGIC) + 32
        if len(blob) <= header_len or not blob.startswith(_MAGIC):
            return None
        digest = blob[len(_MAGIC) : header_len]
        payload = blob[header_len:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            envelope = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if envelope.get("salt") != engine_salt():
            return None
        return envelope.get("value")

    def peek(self, key: str) -> Optional[Any]:
        """Load the value for ``key`` without touching :attr:`stats`.

        The fabric coordinator polls the cache while workers publish
        results; those polls must not distort the run's hit/miss
        economics.  Unlike :meth:`get`, a defective entry is left on
        disk untouched (the next real :meth:`get` evicts it).
        """
        try:
            blob = self.path_for(key).read_bytes()
        except OSError:
            return None
        return self._decode(blob)

    def iter_entries(self):
        """Yield ``(key, path, size_bytes, mtime)`` for every entry on disk.

        Deterministic order (sorted by key); skips files that vanish
        mid-scan (a concurrent gc or eviction), tmp droppings, and
        anything that is not shaped like ``<2-hex>/<key>.bin``.
        """
        shards = sorted(
            p
            for p in self.root.iterdir()
            if p.is_dir() and len(p.name) == 2 and p.name != self.LEASES_DIRNAME
        )
        for shard in shards:
            for path in sorted(shard.glob("*.bin")):
                key = path.stem
                if not key.startswith(shard.name):
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue
                yield key, path, st.st_size, st.st_mtime

    def _lease_files(self):
        """All fabric lease files under this cache root (sorted)."""
        if not self.leases_dir.is_dir():
            return []
        return sorted(p for p in self.leases_dir.iterdir() if p.is_file())

    def _live_lease_keys(self, now: float, grace: float) -> set:
        """Keys whose lease is a recently-heartbeaten ``claimed`` claim.

        A claimed lease is judged live by its *file mtime* (the holder
        rewrites the file on every heartbeat), not by the wall-clock
        timestamps inside it — mtime and ``now`` come from the same
        local clock, so a worker on a host with a stepped clock still
        keeps its claim protected.  ``done`` markers are never live:
        they journal finished work and are fair game for cleanup.
        """
        live = set()
        for lease_path in self._lease_files():
            if not lease_path.name.endswith(".lease"):
                continue
            try:
                age = now - lease_path.stat().st_mtime
                data = json.loads(lease_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if data.get("status") == "claimed" and age <= grace:
                live.add(lease_path.name[: -len(".lease")])
        return live

    def disk_stats(self, now: Optional[float] = None) -> CacheDiskStats:
        """Scan the directory and report what it holds."""
        now = time.time() if now is None else now
        entries = 0
        total = 0
        oldest = None
        newest = None
        for _key, _path, size, mtime in self.iter_entries():
            entries += 1
            total += size
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        return CacheDiskStats(
            entries=entries,
            total_bytes=total,
            oldest_age_seconds=max(0.0, now - oldest) if oldest is not None else 0.0,
            newest_age_seconds=max(0.0, now - newest) if newest is not None else 0.0,
            lease_files=len(self._lease_files()),
        )

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
        lease_grace_seconds: float = LEASE_GRACE_SECONDS,
    ) -> CacheGcReport:
        """Evict entries until the cache satisfies the given bounds.

        Age-based eviction (``max_age_seconds``) runs first, then
        size-based eviction (``max_bytes``) removes the
        oldest-modified entries until the directory fits.  Each file is
        removed individually with :meth:`Path.unlink` — readers racing
        the gc either see the complete entry or a clean miss, never a
        torn file.  Orphaned atomic-write temp files and *settled*
        fabric lease files (older than ``max_age_seconds``, or all of
        them when only ``max_bytes`` is given and the entry they
        journal is gone) are cleaned up alongside.

        gc is safe to run concurrently with an active worker fleet: a
        cell whose lease is ``claimed`` and recently heartbeaten
        (within ``lease_grace_seconds`` of file mtime) is *live* — its
        entry is never evicted and its lease never removed, whatever
        the age/size bounds say.  At worst a protected cell makes a
        ``max_bytes`` pass overshoot its target until the claim
        settles.
        """
        now = time.time() if now is None else now
        live = self._live_lease_keys(now, lease_grace_seconds)
        entries = list(self.iter_entries())
        total = sum(size for _k, _p, size, _m in entries)
        doomed = []
        survivors = []
        for entry in entries:
            key, _path, _size, mtime = entry
            if (
                max_age_seconds is not None
                and now - mtime > max_age_seconds
                and key not in live
            ):
                doomed.append(entry)
            else:
                survivors.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(size for _k, _p, size, _m in survivors)
            evictable = sorted(
                (e for e in survivors if e[0] not in live),
                key=lambda e: e[3],  # oldest mtime first
            )
            while evictable and kept_bytes > max_bytes:
                victim = evictable.pop(0)
                doomed.append(victim)
                kept_bytes -= victim[2]
        freed = 0
        evicted = 0
        doomed_keys = set()
        for key, path, size, _mtime in doomed:
            doomed_keys.add(key)
            if dry_run:
                evicted += 1
                freed += size
                continue
            try:
                path.unlink(missing_ok=True)
                evicted += 1
                freed += size
                self.stats.evictions += 1
            except OSError:
                continue
        lease_removed = 0
        for lease_path in self._lease_files():
            try:
                age = now - lease_path.stat().st_mtime
            except OSError:
                continue
            if lease_path.stem in live:
                # A heartbeating claim is never swept, even by an
                # aggressive --max-age: the holder is computing right
                # now and stealing its lease would duplicate the work.
                continue
            stale = max_age_seconds is not None and age > max_age_seconds
            orphaned = lease_path.stem in doomed_keys
            if not (stale or orphaned):
                continue
            if dry_run:
                lease_removed += 1
                continue
            try:
                lease_path.unlink(missing_ok=True)
                lease_removed += 1
            except OSError:
                continue
        if not dry_run:
            self._sweep_tmp_files()
        return CacheGcReport(
            scanned=len(entries),
            evicted=evicted,
            bytes_freed=freed,
            bytes_remaining=total - freed,
            lease_files_removed=lease_removed,
            dry_run=dry_run,
            leases_live=len(live),
        )

    def _sweep_tmp_files(self) -> None:
        """Remove orphaned atomic-write temp files (crashed writers)."""
        for path in self.root.glob("*/*.tmp.*"):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def _evict(self, path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
        except OSError:
            pass
