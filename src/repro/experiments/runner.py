"""A small grid runner for custom experiment matrices.

The table/figure functions cover the paper; :class:`ExperimentRunner`
is for users who want their own (scenario x policy x scheduler) grids
with consistent configuration and labelled results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.policy import ReschedulingPolicy
from ..errors import ConfigurationError
from ..metrics.summary import PerformanceSummary, summarize
from ..schedulers.initial import InitialScheduler, RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..simulator.results import SimulationResult
from ..simulator.simulation import run_simulation
from ..workload.scenarios import Scenario

__all__ = ["ExperimentCell", "ExperimentRunner"]


@dataclass(frozen=True)
class ExperimentCell:
    """One (scenario, policy, scheduler) run with its outputs.

    Attributes:
        scenario_name: name of the scenario simulated.
        policy_name: name of the rescheduling policy.
        scheduler_name: name of the initial scheduler.
        summary: the run's performance summary.
        result: the full simulation result (``None`` unless the runner
            was asked to keep raw results).
    """

    scenario_name: str
    policy_name: str
    scheduler_name: str
    summary: PerformanceSummary
    result: Optional[SimulationResult] = None


class ExperimentRunner:
    """Runs a labelled grid of simulations.

    Example:
        >>> from repro import busy_week, no_res, res_sus_util
        >>> runner = ExperimentRunner(keep_results=False)   # doctest: +SKIP
        >>> cells = runner.run_grid(
        ...     scenarios=[busy_week(scale=0.05)],
        ...     policy_factories=[no_res, res_sus_util],
        ... )   # doctest: +SKIP
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        keep_results: bool = False,
    ) -> None:
        self._config = config or SimulationConfig(strict=False)
        self._keep_results = keep_results

    def run_grid(
        self,
        scenarios: Sequence[Scenario],
        policy_factories: Sequence[Callable[[], ReschedulingPolicy]],
        scheduler_factories: Optional[
            Sequence[Callable[[], InitialScheduler]]
        ] = None,
    ) -> List[ExperimentCell]:
        """Run the full cross product and return one cell per run."""
        if not scenarios:
            raise ConfigurationError("run_grid needs at least one scenario")
        if not policy_factories:
            raise ConfigurationError("run_grid needs at least one policy factory")
        scheduler_factories = scheduler_factories or [RoundRobinScheduler]
        cells: List[ExperimentCell] = []
        for scenario in scenarios:
            for scheduler_factory in scheduler_factories:
                for policy_factory in policy_factories:
                    policy = policy_factory()
                    scheduler = scheduler_factory()
                    result = run_simulation(
                        scenario.trace,
                        scenario.cluster,
                        policy=policy,
                        initial_scheduler=scheduler,
                        config=self._config,
                    )
                    cells.append(
                        ExperimentCell(
                            scenario_name=scenario.name,
                            policy_name=policy.name,
                            scheduler_name=scheduler.name,
                            summary=summarize(result),
                            result=result if self._keep_results else None,
                        )
                    )
        return cells

    @staticmethod
    def by_scenario(cells: Sequence[ExperimentCell]) -> Dict[str, List[ExperimentCell]]:
        """Group cells by scenario name, preserving order."""
        grouped: Dict[str, List[ExperimentCell]] = {}
        for cell in cells:
            grouped.setdefault(cell.scenario_name, []).append(cell)
        return grouped
