"""A grid runner for custom experiment matrices.

The table/figure functions cover the paper; :class:`ExperimentRunner`
is for users who want their own (scenario x policy x scheduler) grids
with consistent configuration and labelled results.  The runner is the
thin policy-facing layer over the shared execution backend
(:mod:`repro.experiments.parallel`): it supports process-pool parallel
execution (``n_workers``), content-addressed on-disk result caching
(``cache_dir`` / :mod:`repro.experiments.cache`), and per-cell derived
seeds, so a grid's results are bit-identical whether it runs serially,
in parallel, or from cache.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.policy import ReschedulingPolicy
from ..errors import ConfigurationError, ExperimentExecutionError
from ..policies import canonical_spec, policy_from_spec
from ..metrics.summary import PerformanceSummary
from ..schedulers.initial import InitialScheduler, RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..simulator.results import SimulationResult
from ..workload.scenarios import Scenario
from .cache import CacheStats, ResultCache, open_cache
from .checkpoint import GridCheckpoint
from .parallel import CellFailure, make_cell_task, run_grid_parallel

__all__ = ["ExperimentCell", "ExperimentRunner"]


@dataclass(frozen=True)
class ExperimentCell:
    """One (scenario, policy, scheduler) run with its outputs.

    Attributes:
        scenario_name: name of the scenario simulated.
        policy_name: name of the rescheduling policy.
        scheduler_name: name of the initial scheduler.
        summary: the run's performance summary.
        result: the full simulation result (``None`` unless the runner
            was asked to keep raw results).
        wall_seconds: wall-clock seconds this cell took in this
            invocation (the original simulation time when served from
            cache, so speedups stay observable).
        from_cache: True when the cell was served from the on-disk
            result cache instead of being simulated.
        seed: the derived per-cell simulation seed (stable across runs
            and worker orderings).
        from_checkpoint: True when the cell was resumed from a grid
            checkpoint instead of being simulated.
        provenance: where the result came from — one of the
            ``PROVENANCE_*`` constants in
            :mod:`repro.experiments.parallel` (``computed``,
            ``cache_hit``, ``checkpoint`` or ``claimed_elsewhere``).
        policy_spec: the canonical registry spec string the policy was
            built from (``None`` when it was constructed directly).
    """

    scenario_name: str
    policy_name: str
    scheduler_name: str
    summary: PerformanceSummary
    result: Optional[SimulationResult] = None
    wall_seconds: float = 0.0
    from_cache: bool = False
    seed: Optional[int] = None
    from_checkpoint: bool = False
    provenance: str = "computed"
    policy_spec: Optional[str] = None


def _factory_name(factory: Callable) -> str:
    return getattr(factory, "__name__", None) or repr(factory)


class ExperimentRunner:
    """Runs a labelled grid of simulations.

    Example:
        >>> from repro import busy_week, no_res, res_sus_util
        >>> runner = ExperimentRunner(n_workers=4)          # doctest: +SKIP
        >>> cells = runner.run(
        ...     scenarios=[busy_week(scale=0.05)],
        ...     policies=[no_res, "ResSusUtil", "dfrs:share=0.5"],
        ... )   # doctest: +SKIP

    Args:
        config: simulation config shared by every cell; each cell's
            ``seed`` is re-derived from ``config.seed`` and the cell's
            identity (never from call order), so cells are independent
            and reproducible one-by-one.
        keep_results: keep each cell's full
            :class:`~repro.simulator.results.SimulationResult` (memory
            heavy for big grids).
        n_workers: number of worker processes; ``1`` (the default) runs
            serially in-process.  Parallel results are bit-identical to
            serial ones.  Cells whose policy cannot be pickled fall
            back to serial execution automatically.
        cache_dir: directory for the content-addressed result cache;
            defaults to ``$REPRO_CACHE_DIR`` when set.  ``None`` (and no
            environment override) disables caching.
        use_cache: force caching on/off regardless of ``cache_dir``
            resolution; ``use_cache=False`` never touches the disk.
        progress: optional callable invoked with each completed
            :class:`~repro.experiments.parallel.CellOutcome` (cache
            hits included) as the grid executes — e.g. a
            :class:`~repro.telemetry.ProgressReporter` heartbeat.
        cell_timeout: optional seconds the grid may go without
            completing a cell before the stuck cells are failed (see
            :func:`~repro.experiments.parallel.run_grid_parallel`).
        max_attempts: total executions allowed per cell whose worker
            process died; deterministic errors are never retried.
        retry_backoff: base seconds slept after a worker-pool break,
            doubling per subsequent break.
        keep_going: do not raise on cell failures — return the
            completed cells and expose the structured failures via
            :attr:`last_failures`.
        checkpoint_path: optional path for a
            :class:`~repro.experiments.checkpoint.GridCheckpoint`;
            completed cells are journalled there so an interrupted grid
            resumes without recomputing them.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        keep_results: bool = False,
        n_workers: int = 1,
        cache_dir: Optional[object] = None,
        use_cache: Optional[bool] = None,
        progress: Optional[Callable] = None,
        cell_timeout: Optional[float] = None,
        max_attempts: int = 3,
        retry_backoff: float = 0.5,
        keep_going: bool = False,
        checkpoint_path: Optional[object] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self._config = config or SimulationConfig(strict=False)
        self._keep_results = keep_results
        self._n_workers = n_workers
        self._cache = open_cache(cache_dir, use_cache)
        self._progress = progress
        self._cell_timeout = cell_timeout
        self._max_attempts = max_attempts
        self._retry_backoff = retry_backoff
        self._keep_going = keep_going
        self._checkpoint = (
            GridCheckpoint(checkpoint_path) if checkpoint_path is not None else None
        )
        self._last_failures: Tuple[CellFailure, ...] = ()

    @property
    def cache(self) -> Optional[ResultCache]:
        """The result cache in use, if any."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/store/eviction counters (all zero when caching is off)."""
        return self._cache.stats if self._cache is not None else CacheStats()

    @property
    def checkpoint(self) -> Optional[GridCheckpoint]:
        """The grid checkpoint in use, if any."""
        return self._checkpoint

    @property
    def last_failures(self) -> Tuple[CellFailure, ...]:
        """Structured failures from the most recent ``keep_going`` grid.

        Empty when every cell completed (and always empty without
        ``keep_going``, where failures raise instead).
        """
        return self._last_failures

    def run(
        self,
        scenarios: Sequence[Scenario],
        policies: Sequence[Union[Callable[[], ReschedulingPolicy], str]],
        scheduler_factories: Optional[
            Sequence[Callable[[], InitialScheduler]]
        ] = None,
        *,
        backend: Optional[str] = None,
    ) -> List[ExperimentCell]:
        """Run the full cross product and return one cell per run.

        The one grid entry point: serial, process-pool parallel and
        fabric execution all route through here, selected by
        ``backend``.  Results are bit-identical across backends — the
        per-cell seed derives from the cell's identity, never from how
        or where it ran.

        Args:
            scenarios: the scenarios to sweep.
            policies: zero-arg policy factories and/or registry spec
                strings (``"ResSusUtil"``, ``"dfrs:share=0.5"``, ...);
                strings resolve through :mod:`repro.policies` with the
                first scenario's ``wait_threshold`` as the default.
            scheduler_factories: initial-scheduler factories; defaults
                to round-robin only.
            backend: execution backend spec —

                * ``None`` (default): the runner's ``n_workers``
                  (serial for 1, else an in-process pool);
                * ``"serial"``: force in-process serial execution;
                * ``"local"`` / ``"local:N"``: process pool with the
                  runner's / ``N`` workers;
                * ``"subprocess:N"`` / ``"ssh:host1,host2"``: the
                  distributed fabric
                  (:func:`~repro.fabric.coordinator.run_grid_fabric`);
                  requires the runner to have a result cache, the
                  fabric's coordination medium.

        Raises:
            ExperimentExecutionError: when building or running any cell
                fails (unless the runner was built with ``keep_going``,
                in which case run failures land in
                :attr:`last_failures` and only factory errors raise).
                The error names the failing (scenario, policy,
                scheduler) cell and carries every
                :class:`ExperimentCell` completed before the failure in
                ``completed_cells``, so a long sweep's finished work is
                never lost.
            ConfigurationError: for an empty grid, an unknown
                ``backend`` spec, or a fabric backend without a cache.
        """
        self._last_failures = ()
        if not scenarios:
            raise ConfigurationError("run needs at least one scenario")
        if not policies:
            raise ConfigurationError("run needs at least one policy")
        policy_factories = self._policy_factories(scenarios, policies)
        scheduler_factories = scheduler_factories or [RoundRobinScheduler]
        n_workers, fabric_spec = self._resolve_backend(backend)

        # Register the whole grid with the reporter here (the serial
        # path below executes cell-by-cell, which would otherwise feed
        # add_total one cell at a time and ruin the ETA); the callback
        # handed to the backend deliberately hides add_total.
        progress = self._progress
        notify = None
        if progress is not None:
            add_total = getattr(progress, "add_total", None)
            if add_total is not None:
                add_total(
                    len(scenarios) * len(scheduler_factories) * len(policy_factories)
                )

            def notify(outcome) -> None:
                progress(outcome)

        serial = fabric_spec is None and n_workers == 1
        cells: List[ExperimentCell] = []
        tasks = []
        index = 0
        for scenario in scenarios:
            for scheduler_factory in scheduler_factories:
                for policy_factory in policy_factories:
                    try:
                        policy = policy_factory()
                        scheduler = scheduler_factory()
                    except Exception as exc:
                        raise ExperimentExecutionError(
                            scenario.name,
                            _factory_name(policy_factory),
                            _factory_name(scheduler_factory),
                            exc,
                            completed_cells=tuple(cells),
                        ) from exc
                    task = make_cell_task(
                        index,
                        scenario,
                        policy,
                        scheduler,
                        self._config,
                        keep_result=self._keep_results,
                    )
                    index += 1
                    if serial:
                        cells.extend(
                            self._execute(
                                [task], n_workers=1, done=cells, progress=notify
                            )
                        )
                    else:
                        tasks.append(task)
        if fabric_spec is not None:
            return self._execute_fabric(tasks, fabric_spec, progress=notify)
        if tasks:
            cells.extend(
                self._execute(
                    tasks, n_workers=n_workers, done=cells, progress=notify
                )
            )
        return cells

    def run_grid(
        self,
        scenarios: Sequence[Scenario],
        policy_factories: Sequence[Callable[[], ReschedulingPolicy]],
        scheduler_factories: Optional[
            Sequence[Callable[[], InitialScheduler]]
        ] = None,
    ) -> List[ExperimentCell]:
        """Deprecated alias for :meth:`run` (same behaviour, no ``backend``)."""
        warnings.warn(
            "ExperimentRunner.run_grid is deprecated; use ExperimentRunner.run "
            "(same arguments, plus backend=)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(
            scenarios, policy_factories, scheduler_factories=scheduler_factories
        )

    def _policy_factories(
        self,
        scenarios: Sequence[Scenario],
        policies: Sequence[Union[Callable[[], ReschedulingPolicy], str]],
    ) -> List[Callable[[], ReschedulingPolicy]]:
        """Resolve spec-string entries through the policy registry."""
        wait_threshold = scenarios[0].wait_threshold

        def spec_factory(spec: str) -> Callable[[], ReschedulingPolicy]:
            def factory() -> ReschedulingPolicy:
                return policy_from_spec(
                    spec, defaults={"wait_threshold": wait_threshold}
                )

            factory.__name__ = canonical_spec(spec)
            return factory

        return [
            spec_factory(entry) if isinstance(entry, str) else entry
            for entry in policies
        ]

    def _resolve_backend(
        self, backend: Optional[str]
    ) -> Tuple[Optional[int], Optional[str]]:
        """Split a backend spec into (local worker count, fabric spec)."""
        if backend is None:
            return self._n_workers, None
        kind, _, arg = backend.partition(":")
        kind = kind.strip().lower()
        if kind == "serial":
            if arg:
                raise ConfigurationError(
                    f"backend 'serial' takes no argument, got {backend!r}"
                )
            return 1, None
        if kind == "local":
            try:
                return (int(arg) if arg else self._n_workers), None
            except ValueError:
                raise ConfigurationError(
                    f"bad worker count in backend spec {backend!r}"
                ) from None
        # anything else is a fabric backend spec, validated at dispatch
        return None, backend

    def _execute_fabric(self, tasks, spec: str, progress=None) -> List[ExperimentCell]:
        """Dispatch a built grid onto the distributed fabric."""
        # imported here: the fabric package is heavyweight and only
        # needed when a fabric backend is actually requested.
        from ..fabric.backends import backend_from_spec
        from ..fabric.coordinator import run_grid_fabric

        if self._cache is None:
            raise ConfigurationError(
                "fabric backends coordinate through the result cache; "
                "construct the runner with cache_dir=... to use one"
            )
        backend = backend_from_spec(spec)
        report = run_grid_fabric(
            tasks,
            backend,
            self._cache,
            checkpoint=self._checkpoint,
            progress=progress,
            keep_going=self._keep_going,
        )
        self._last_failures = self._last_failures + report.failures
        return [self._to_cell(outcome) for outcome in report.completed]

    def _execute(
        self, tasks, n_workers: int, done: Sequence[ExperimentCell], progress=None
    ):
        """Run tasks via the shared backend, mapping outcomes to cells."""
        try:
            grid = run_grid_parallel(
                tasks,
                n_workers=n_workers,
                cache=self._cache,
                checkpoint=self._checkpoint,
                cell_timeout=self._cell_timeout,
                max_attempts=self._max_attempts,
                retry_backoff=self._retry_backoff,
                keep_going=self._keep_going,
                progress=progress,
            )
        except ExperimentExecutionError as exc:
            raise ExperimentExecutionError(
                exc.scenario_name,
                exc.policy_name,
                exc.scheduler_name,
                exc.__cause__ or exc,
                completed_cells=tuple(done)
                + tuple(self._to_cell(o) for o in exc.completed_cells),
            ) from exc.__cause__
        self._last_failures = self._last_failures + grid.failures
        return [self._to_cell(outcome) for outcome in grid.completed]

    def _to_cell(self, outcome) -> ExperimentCell:
        return ExperimentCell(
            scenario_name=outcome.scenario_name,
            policy_name=outcome.policy_name,
            scheduler_name=outcome.scheduler_name,
            summary=outcome.summary,
            result=outcome.result if self._keep_results else None,
            wall_seconds=outcome.wall_seconds,
            from_cache=outcome.from_cache,
            seed=outcome.seed,
            from_checkpoint=outcome.from_checkpoint,
            provenance=getattr(outcome, "provenance", "computed"),
            policy_spec=getattr(outcome, "policy_spec", None),
        )

    @staticmethod
    def by_scenario(cells: Sequence[ExperimentCell]) -> Dict[str, List[ExperimentCell]]:
        """Group cells by scenario name, preserving order."""
        grouped: Dict[str, List[ExperimentCell]] = {}
        for cell in cells:
            grouped.setdefault(cell.scenario_name, []).append(cell)
        return grouped
