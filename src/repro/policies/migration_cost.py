"""Cost/benefit-gated migration (after Calzolari et al., arXiv:1204.6631).

Where :class:`~repro.core.policies.MigrateSuspended` migrates whenever
its selector finds *any* alternate pool, this policy prices each
candidate move and only migrates when the expected gain is positive:

    benefit(target) = predicted_wait(here)
                      - predicted_wait(target)
                      - transfer_minutes
                      - resuspend_penalty * utilization(target)

``predicted_wait`` uses the same backlog model as
:class:`~repro.core.selectors.PredictedWaitSelector`: net backlog
(waiting + suspended - free cores) times the mean job runtime, spread
over the pool's cores.  The resuspension term charges busier targets
for the chance the migrated job is preempted again on arrival.  The
actual migration delay and dilation paid in-simulation still come
from :class:`~repro.simulator.config.SimulationConfig`; this policy's
parameters shape the *decision*, not the mechanics.

Ties between equally-beneficial targets break on lexicographic pool
id, keeping runs deterministic without consuming RNG draws.
"""

from __future__ import annotations

from typing import Optional

from ..core.context import PoolSnapshot
from ..core.decisions import STAY, Decision, migrate
from ..core.policy import ReschedulingPolicy
from ..errors import ConfigurationError

__all__ = ["MigrationCostPolicy"]


class MigrationCostPolicy(ReschedulingPolicy):
    """Migrate a suspended job only when the priced benefit is positive.

    Args:
        mean_runtime: expected job runtime (minutes) used to convert
            backlog depth into predicted queue-wait minutes.
        transfer_minutes: modelled cost of shipping the checkpoint.
        resuspend_penalty: minutes charged per unit of target
            utilization — the expected cost of being preempted again.
        min_benefit: migrate only when the best candidate's benefit
            strictly exceeds this (minutes).
        name: report name; defaults to a parameter-bearing form so
            differently-tuned instances stay distinguishable.
    """

    def __init__(
        self,
        mean_runtime: float = 120.0,
        transfer_minutes: float = 10.0,
        resuspend_penalty: float = 30.0,
        min_benefit: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if mean_runtime <= 0:
            raise ConfigurationError(f"mean_runtime must be > 0, got {mean_runtime}")
        if transfer_minutes < 0:
            raise ConfigurationError(
                f"transfer_minutes must be >= 0, got {transfer_minutes}"
            )
        if resuspend_penalty < 0:
            raise ConfigurationError(
                f"resuspend_penalty must be >= 0, got {resuspend_penalty}"
            )
        self.mean_runtime = mean_runtime
        self.transfer_minutes = transfer_minutes
        self.resuspend_penalty = resuspend_penalty
        self.min_benefit = min_benefit
        self.name = name or (
            f"MigCost[runtime={mean_runtime:g},transfer={transfer_minutes:g},"
            f"resuspend={resuspend_penalty:g},min={min_benefit:g}]"
        )

    def _predicted_wait(self, snapshot: PoolSnapshot) -> float:
        net_backlog = (
            snapshot.waiting_jobs + snapshot.suspended_jobs - snapshot.free_cores
        )
        if net_backlog <= 0:
            return 0.0
        return net_backlog * self.mean_runtime / max(snapshot.total_cores, 1)

    def on_suspend(self, job, view) -> Decision:
        staying = self._predicted_wait(view.pool(job.pool_id))
        best_pool: Optional[str] = None
        best_benefit = self.min_benefit
        for pool_id in view.candidate_pools(job):
            if pool_id == job.pool_id:
                continue
            snapshot = view.pool(pool_id)
            cost = self.transfer_minutes + self.resuspend_penalty * snapshot.utilization
            benefit = staying - self._predicted_wait(snapshot) - cost
            if benefit > best_benefit or (
                benefit == best_benefit
                and best_pool is not None
                and pool_id < best_pool
            ):
                best_pool = pool_id
                best_benefit = benefit
        if best_pool is None:
            return STAY
        return migrate(best_pool)
