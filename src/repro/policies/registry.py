"""String-keyed registries for rescheduling policies and pool selectors.

The registry is the one place that maps stable names to the factories
that build live policy objects.  Everything that has to address a
policy across a process boundary — the parallel runner, fabric
workers, the content-addressed cache, CLI flags, provenance records —
carries a spec *string* (see :mod:`repro.policies.spec`) and calls
:func:`policy_from_spec` at the point of use.

Third-party packages plug in without touching this repo: expose a
zero-argument callable under the ``repro.policies`` entry-point group
that calls :func:`register_policy` / :func:`register_selector`.  The
registries load entry points lazily, on the first lookup that misses,
so pure-builtin runs never pay the metadata scan.

Factories may need live objects a string cannot carry (today: the
site :class:`~repro.sites.topology.Topology`).  They declare those as
``context`` keys at registration time; callers supply them via
``policy_from_spec(spec, context={"topology": topo})``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import ConfigurationError, UnknownPolicyError
from .spec import PolicySpec, format_spec, parse_spec

__all__ = [
    "ENTRY_POINT_GROUP",
    "PolicyRegistration",
    "register_policy",
    "register_selector",
    "policy_from_spec",
    "selector_from_spec",
    "available_policies",
    "available_selectors",
    "load_plugins",
]

#: The ``importlib.metadata`` entry-point group third-party packages use.
ENTRY_POINT_GROUP = "repro.policies"


@dataclass(frozen=True)
class PolicyRegistration:
    """One registered factory: its name, builder and declared needs."""

    name: str
    factory: Callable[..., object]
    description: str = ""
    context: Tuple[str, ...] = field(default=())


class _Registry:
    """A name -> :class:`PolicyRegistration` map with lazy plugin loading."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: Dict[str, PolicyRegistration] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., object],
        *,
        description: str = "",
        context: Tuple[str, ...] = (),
        replace: bool = False,
    ) -> Callable[..., object]:
        if not name:
            raise ConfigurationError(f"{self._kind} registration needs a name")
        if name in self._entries and not replace:
            raise ConfigurationError(
                f"{self._kind} {name!r} is already registered; pass replace=True to override"
            )
        self._entries[name] = PolicyRegistration(
            name=name,
            factory=factory,
            description=description or (inspect.getdoc(factory) or "").partition("\n")[0],
            context=tuple(context),
        )
        return factory

    def get(self, name: str) -> PolicyRegistration:
        entry = self._entries.get(name)
        if entry is None:
            load_plugins()
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownPolicyError(name, known=self.names())
        return entry

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entries(self) -> Tuple[PolicyRegistration, ...]:
        return tuple(self._entries[name] for name in self.names())


_POLICIES = _Registry("policy")
_SELECTORS = _Registry("selector")
_plugins_loaded = False


def register_policy(
    name: str,
    *,
    description: str = "",
    context: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator: register a policy factory under ``name``.

    The factory is called with the spec's keyword parameters (plus any
    declared ``context`` objects) and must return a
    :class:`~repro.core.policy.ReschedulingPolicy`.
    """

    def decorate(factory: Callable[..., object]) -> Callable[..., object]:
        return _POLICIES.register(
            name, factory, description=description, context=context, replace=replace
        )

    return decorate


def register_selector(
    name: str,
    *,
    description: str = "",
    context: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator: register a pool-selector factory under ``name``."""

    def decorate(factory: Callable[..., object]) -> Callable[..., object]:
        return _SELECTORS.register(
            name, factory, description=description, context=context, replace=replace
        )

    return decorate


def load_plugins() -> Tuple[str, ...]:
    """Load ``repro.policies`` entry points (idempotent).

    Each entry point must resolve to a zero-argument callable that
    performs its registrations; an entry point whose import already
    registered everything may resolve to any non-callable.  Returns the
    names of the entry points that loaded cleanly; a broken plugin is
    skipped (an unrelated package's bad metadata must not take down
    builtin policies).
    """
    global _plugins_loaded
    if _plugins_loaded:
        return ()
    _plugins_loaded = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - importlib.metadata ships with 3.8+
        return ()
    try:
        candidates = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selectable API
        candidates = entry_points().get(ENTRY_POINT_GROUP, [])
    loaded = []
    for entry in candidates:
        try:
            hook = entry.load()
            if callable(hook):
                hook()
        except Exception:
            continue
        loaded.append(entry.name)
    return tuple(loaded)


def _build_kwargs(
    spec: PolicySpec,
    entry: PolicyRegistration,
    context: Optional[Dict[str, object]],
    defaults: Optional[Dict[str, object]],
) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    for key, value in spec.params:
        if isinstance(value, PolicySpec):
            kwargs[key] = selector_from_spec(value, context=context)
        else:
            kwargs[key] = value
    if defaults:
        parameters = inspect.signature(entry.factory).parameters
        takes_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
        for key, value in defaults.items():
            if key not in kwargs and (takes_kwargs or key in parameters):
                kwargs[key] = value
    for key in entry.context:
        if context is None or key not in context:
            raise ConfigurationError(
                f"{spec.name!r} needs context[{key!r}] "
                f"(pass context={{{key!r}: ...}} when building from a spec)"
            )
        kwargs[key] = context[key]
    return kwargs


def _instantiate(
    registry: _Registry,
    spec: Union[str, PolicySpec],
    context: Optional[Dict[str, object]],
    defaults: Optional[Dict[str, object]],
) -> object:
    parsed = parse_spec(spec)
    entry = registry.get(parsed.name)
    kwargs = _build_kwargs(parsed, entry, context, defaults)
    try:
        return entry.factory(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for {registry._kind} spec {format_spec(parsed)!r}: {exc}"
        ) from None


def policy_from_spec(
    spec: Union[str, PolicySpec],
    *,
    context: Optional[Dict[str, object]] = None,
    defaults: Optional[Dict[str, object]] = None,
) -> object:
    """Build a policy from a spec string (or parsed :class:`PolicySpec`).

    Args:
        spec: e.g. ``"ResSusUtil"`` or ``"dfrs:share=0.5,floor=0.1"``.
            Nested ``selector=name(...)`` parameters are resolved
            through the selector registry.
        context: live objects for factories that declared context keys
            (e.g. ``{"topology": topo}`` for site-aware policies).
        defaults: fallback parameters applied only when the spec does
            not set them *and* the factory accepts them — how the CLI
            threads ``--wait-threshold`` through without breaking
            policies that take no such parameter.

    The built policy gets a ``spec`` attribute holding the canonical
    spec string, so telemetry and provenance can echo how it was
    addressed.  Specs never enter cache fingerprints or cell seeds —
    those still key on the policy's class/name/parameters, which is
    what keeps registry-routed baselines bit-identical to direct
    construction.
    """
    policy = _instantiate(_POLICIES, spec, context, defaults)
    try:
        policy.spec = format_spec(parse_spec(spec))
    except AttributeError:  # pragma: no cover - slotted third-party policy
        pass
    return policy


def selector_from_spec(
    spec: Union[str, PolicySpec],
    *,
    context: Optional[Dict[str, object]] = None,
) -> object:
    """Build a pool selector from a spec string (or parsed spec)."""
    return _instantiate(_SELECTORS, spec, context, None)


def available_policies() -> Tuple[PolicyRegistration, ...]:
    """All registered policies (builtins plus loaded plugins), sorted."""
    load_plugins()
    return _POLICIES.entries()


def available_selectors() -> Tuple[PolicyRegistration, ...]:
    """All registered selectors (builtins plus loaded plugins), sorted."""
    load_plugins()
    return _SELECTORS.entries()
