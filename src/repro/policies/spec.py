"""The spec-string grammar: stable, picklable addresses for policies.

Every policy and selector the registry knows is reachable through a
plain string, so the parallel runner, fabric workers, cache keys, CLI
flags and provenance records can all name a policy without shipping a
live object::

    NoRes
    ResSusWaitUtil:wait_threshold=45
    dfrs:share=0.5,floor=0.1
    res_sus:selector=weighted(queue_weight=2,utilization_weight=1)

Grammar (whitespace around tokens is ignored)::

    spec   := name [":" params]
    params := param ("," param)*          # commas inside (...) don't split
    param  := key "=" value
    value  := int | float | bool | none | bare-word | name "(" [params] ")"

Nested ``name(...)`` values are sub-specs — the way a policy spec names
its pool selector.  :func:`format_spec` renders the canonical form
(parameters sorted by key), so two spellings of the same spec compare
equal after a parse/format round trip.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..errors import ConfigurationError

__all__ = ["PolicySpec", "parse_spec", "format_spec", "canonical_spec"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")

#: Scalar parameter values a spec string can carry.
Scalar = Union[int, float, bool, None, str]


@dataclass(frozen=True)
class PolicySpec:
    """A parsed spec: a registry name plus sorted ``(key, value)`` params.

    Parameters are stored as a sorted tuple of pairs (not a dict) so
    specs are hashable, picklable and canonically ordered; values are
    scalars or nested :class:`PolicySpec` instances.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def __str__(self) -> str:
        return format_spec(self)


def _parse_value(text: str) -> object:
    text = text.strip()
    if not text:
        raise ConfigurationError("empty value in policy spec")
    if "(" in text:
        if not text.endswith(")"):
            raise ConfigurationError(f"unbalanced parentheses in spec value {text!r}")
        name, _, inner = text[:-1].partition("(")
        return _parse_named(name.strip(), inner)
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if not _NAME_RE.match(text):
        raise ConfigurationError(f"bad value {text!r} in policy spec")
    return text


def _split_params(text: str) -> list:
    """Split on commas that are not inside parentheses."""
    parts = []
    depth = 0
    start = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ConfigurationError(f"unbalanced parentheses in spec {text!r}")
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if depth != 0:
        raise ConfigurationError(f"unbalanced parentheses in spec {text!r}")
    parts.append(text[start:])
    return parts


def _parse_named(name: str, params_text: str) -> PolicySpec:
    name = name.strip()
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"bad name {name!r} in policy spec")
    params_text = params_text.strip()
    if not params_text:
        return PolicySpec(name)
    params = {}
    for part in _split_params(params_text):
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq:
            raise ConfigurationError(
                f"policy spec parameter {part.strip()!r} is not key=value"
            )
        if not _NAME_RE.match(key):
            raise ConfigurationError(f"bad parameter name {key!r} in policy spec")
        if key in params:
            raise ConfigurationError(f"duplicate parameter {key!r} in policy spec")
        params[key] = _parse_value(value)
    return PolicySpec(name, tuple(sorted(params.items())))


def parse_spec(text: str) -> PolicySpec:
    """Parse one spec string into a :class:`PolicySpec`.

    Raises:
        ConfigurationError: on any grammar violation.
    """
    if isinstance(text, PolicySpec):
        return text
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError(f"policy spec must be a non-empty string, got {text!r}")
    name, colon, params_text = text.strip().partition(":")
    return _parse_named(name, params_text if colon else "")


def _format_value(value: object) -> str:
    if isinstance(value, PolicySpec):
        body = ",".join(f"{k}={_format_value(v)}" for k, v in value.params)
        return f"{value.name}({body})"
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_spec(spec: PolicySpec) -> str:
    """Render the canonical string form (parameters sorted by key)."""
    if not spec.params:
        return spec.name
    body = ",".join(f"{k}={_format_value(v)}" for k, v in spec.params)
    return f"{spec.name}:{body}"


def canonical_spec(text: Union[str, PolicySpec]) -> str:
    """Parse-then-format: the canonical spelling of any valid spec."""
    return format_spec(parse_spec(text))
