"""DFRS-style fractional-share rescheduling (after arXiv:1106.4985).

Dynamic Fractional Resource Scheduling replaces the binary
run/suspend decision with fractional CPU allocation: a "suspended"
job keeps executing at a fraction of its host's speed instead of
stalling completely.  Here that maps onto the engine's
:data:`~repro.core.decisions.Action.FRACTION` decision — the
preempting job still gets its cores (admission accounting is
unchanged), but the victim's progress clock keeps ticking at
``share`` of the host speed, so long suspensions no longer translate
one-for-one into lost time, and a job whose remaining work is small
can finish *while suspended*, capping the suspension episode.

The grant shrinks as a pool's suspension backlog grows (the fraction
models timesharing the leftover capacity among all suspended jobs)
but never drops below a configurable floor.
"""

from __future__ import annotations

from typing import Optional

from ..core.decisions import Decision, fractional
from ..core.policy import ReschedulingPolicy
from ..errors import ConfigurationError

__all__ = ["FractionalSharePolicy"]


class FractionalSharePolicy(ReschedulingPolicy):
    """Grant suspended jobs a fractional share of their host's speed.

    Args:
        share: the pool-wide capacity fraction notionally set aside for
            suspended work; each suspended job's grant is ``share``
            divided by the pool's current suspension backlog.
        floor: minimum per-job grant — even a deeply backlogged pool
            keeps every suspended job progressing at this rate.
        name: report name; defaults to ``DFRS[share=...,floor=...]``
            so differently-parameterised instances get distinct cell
            ids, seeds and cache keys.
    """

    def __init__(
        self, share: float = 0.5, floor: float = 0.05, name: Optional[str] = None
    ) -> None:
        if not 0.0 < share <= 1.0:
            raise ConfigurationError(f"share must be in (0, 1], got {share}")
        if not 0.0 < floor <= 1.0:
            raise ConfigurationError(f"floor must be in (0, 1], got {floor}")
        self.share = share
        self.floor = floor
        self.name = name or f"DFRS[share={share:g},floor={floor:g}]"

    def on_suspend(self, job, view) -> Decision:
        snapshot = view.pool(job.pool_id)
        grant = self.share / max(1, snapshot.suspended_jobs)
        return fractional(min(1.0, max(self.floor, grant)))
