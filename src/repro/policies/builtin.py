"""Built-in registry entries: the paper's strategies and the extensions.

Importing this module (which ``repro.policies`` does eagerly) registers
everything below, so the registry works under a plain ``PYTHONPATH``
checkout where entry-point metadata is not installed.  The
``register_builtins`` entry point in ``pyproject.toml`` resolves here
too, making an installed copy behave identically.

Identity guarantee: the five paper names delegate to the *same*
factories in :mod:`repro.core.policies` that direct callers use, so a
registry-routed ``ResSusUtil`` has the same class, name, selector and
wait threshold — hence the same derived cell seed and cache key — as
``res_sus_util()``.  The golden-matrix tests pin this down.
"""

from __future__ import annotations

from typing import Optional

from ..core import policies as core_policies
from ..core.policies import (
    DuplicateSuspended,
    MigrateSuspended,
    RescheduleSuspended,
    RescheduleSuspendedAndWaiting,
    RescheduleWaitingOnly,
)
from ..core.selectors import (
    LowestUtilizationSelector,
    PoolSelector,
    PredictedWaitSelector,
    RandomSelector,
    ShortestQueueSelector,
    WeightedSelector,
)
from ..sites.selectors import LocalFirstSelector, TransferAwareSelector
from .fractional import FractionalSharePolicy
from .migration_cost import MigrationCostPolicy
from .registry import register_policy, register_selector

__all__ = ["register_builtins"]


def register_builtins() -> None:
    """Entry-point hook; registration happens at import, so this is a no-op."""


# -- selectors ---------------------------------------------------------------

register_selector("util", description="Lowest-utilization pool (guarded by default)")(
    LowestUtilizationSelector
)
register_selector("random", description="Uniformly random alternate pool")(
    RandomSelector
)
register_selector("shortest_queue", description="Shortest wait-queue pool")(
    ShortestQueueSelector
)
register_selector(
    "weighted", description="Weighted blend of utilization, queue depth and suspensions"
)(WeightedSelector)
register_selector(
    "predicted_wait", description="Lowest predicted queue-wait (backlog model)"
)(PredictedWaitSelector)


@register_selector(
    "local_first",
    description="Prefer same-site pools, falling back to remote sites",
    context=("topology",),
)
def _local_first(
    topology, inner: Optional[PoolSelector] = None, allow_remote: bool = True
) -> LocalFirstSelector:
    return LocalFirstSelector(
        topology, inner=inner or LowestUtilizationSelector(), allow_remote=allow_remote
    )


@register_selector(
    "transfer_aware",
    description="Queue-wait gain must beat the inter-site transfer cost",
    context=("topology",),
)
def _transfer_aware(
    topology, mean_runtime: float = 120.0, min_gain_minutes: float = 5.0
) -> TransferAwareSelector:
    return TransferAwareSelector(
        topology, mean_runtime=mean_runtime, min_gain_minutes=min_gain_minutes
    )


# -- the paper's five strategies (exact factory parity with core) ------------

register_policy("NoRes", description="Paper baseline: never reschedule")(
    core_policies.no_res
)
register_policy(
    "ResSusUtil", description="Restart suspended jobs at the least-utilized pool"
)(core_policies.res_sus_util)
register_policy("ResSusRand", description="Restart suspended jobs at a random pool")(
    core_policies.res_sus_rand
)
register_policy(
    "ResSusWaitUtil",
    description="Also restart jobs waiting past the threshold (utilization)",
)(core_policies.res_sus_wait_util)
register_policy(
    "ResSusWaitRand",
    description="Also restart jobs waiting past the threshold (random)",
)(core_policies.res_sus_wait_rand)


# -- composable generic families ---------------------------------------------


@register_policy(
    "res_sus", description="Restart suspended jobs via a selector sub-spec"
)
def _res_sus(
    selector: Optional[PoolSelector] = None, name: Optional[str] = None
) -> RescheduleSuspended:
    return RescheduleSuspended(selector or LowestUtilizationSelector(), name=name)


@register_policy(
    "res_sus_wait", description="Restart suspended and long-waiting jobs via a selector"
)
def _res_sus_wait(
    selector: Optional[PoolSelector] = None,
    wait_threshold: float = core_policies.DEFAULT_WAIT_THRESHOLD,
    name: Optional[str] = None,
) -> RescheduleSuspendedAndWaiting:
    return RescheduleSuspendedAndWaiting(
        selector or LowestUtilizationSelector(), wait_threshold, name=name
    )


@register_policy(
    "res_wait_only", description="Ablation: move only long-waiting jobs"
)
def _res_wait_only(
    selector: Optional[PoolSelector] = None,
    wait_threshold: float = core_policies.DEFAULT_WAIT_THRESHOLD,
) -> RescheduleWaitingOnly:
    return RescheduleWaitingOnly(
        selector or LowestUtilizationSelector(), wait_threshold
    )


@register_policy(
    "mig_sus", description="Checkpoint-migrate suspended jobs (keeps progress)"
)
def _mig_sus(
    selector: Optional[PoolSelector] = None, name: Optional[str] = None
) -> MigrateSuspended:
    return MigrateSuspended(selector or LowestUtilizationSelector(), name=name)


@register_policy(
    "dup_sus", description="Duplicate suspended jobs; first finisher wins"
)
def _dup_sus(
    selector: Optional[PoolSelector] = None, name: Optional[str] = None
) -> DuplicateSuspended:
    return DuplicateSuspended(selector or LowestUtilizationSelector(), name=name)


@register_policy(
    "transfer_aware",
    description="Restart suspended jobs only when the queue-wait gain beats transfer cost",
    context=("topology",),
)
def _transfer_aware_policy(
    topology,
    mean_runtime: float = 120.0,
    min_gain_minutes: float = 5.0,
    name: Optional[str] = None,
) -> RescheduleSuspended:
    return RescheduleSuspended(
        TransferAwareSelector(
            topology, mean_runtime=mean_runtime, min_gain_minutes=min_gain_minutes
        ),
        name=name
        or f"TransferAware[gain={min_gain_minutes:g},runtime={mean_runtime:g}]",
    )


# -- the new families ---------------------------------------------------------

register_policy(
    "dfrs",
    description="Fractional-share suspension: victims keep running at a fraction",
)(FractionalSharePolicy)
register_policy(
    "migration_cost",
    description="Migrate suspended jobs only when priced benefit is positive",
)(MigrationCostPolicy)
