"""The policy plugin registry: address rescheduling policies by spec string.

Quick tour::

    from repro.policies import policy_from_spec, available_policies

    policy = policy_from_spec("ResSusWaitUtil:wait_threshold=45")
    policy = policy_from_spec("dfrs:share=0.5,floor=0.1")
    policy = policy_from_spec(
        "res_sus:selector=weighted(queue_weight=2)",
    )
    for entry in available_policies():
        print(entry.name, "-", entry.description)

Spec strings are plain, picklable, hashable addresses — the parallel
runner, fabric workers, cache keys, CLI flags and provenance records
all carry them instead of live objects.  Third-party packages add
policies through the ``repro.policies`` entry-point group (see
``docs/policies.md``).
"""

from .fractional import FractionalSharePolicy
from .migration_cost import MigrationCostPolicy
from .registry import (
    ENTRY_POINT_GROUP,
    PolicyRegistration,
    available_policies,
    available_selectors,
    load_plugins,
    policy_from_spec,
    register_policy,
    register_selector,
    selector_from_spec,
)
from .spec import PolicySpec, canonical_spec, format_spec, parse_spec

from . import builtin  # noqa: E402  (import registers the built-in entries)

__all__ = [
    "ENTRY_POINT_GROUP",
    "PolicyRegistration",
    "PolicySpec",
    "FractionalSharePolicy",
    "MigrationCostPolicy",
    "available_policies",
    "available_selectors",
    "canonical_spec",
    "format_spec",
    "load_plugins",
    "parse_spec",
    "policy_from_spec",
    "register_policy",
    "register_selector",
    "selector_from_spec",
]

del builtin
