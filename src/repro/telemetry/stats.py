"""Rendering a run's telemetry directory (`repro stats`).

Loads whatever a telemetry directory contains — the JSONL metrics
snapshot (preferred), the Prometheus text file (fallback), and the
per-cell experiment telemetry — and renders the tables an operator
asks for first: event counters, per-pool gauges, duration histograms,
profiler throughput, and the sweep's cache economics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ReproError
from .exporters import (
    JSONL_FILENAME,
    PROMETHEUS_FILENAME,
    parse_prometheus,
    read_jsonl_snapshot,
)
from .progress import CELLS_FILENAME, read_cells_jsonl

__all__ = ["load_telemetry_dir", "render_stats", "TelemetryStats"]


class TelemetryStats:
    """The normalised content of one telemetry directory."""

    def __init__(self, series: List[dict], cells: List[dict], source: str) -> None:
        self.series = series
        self.cells = cells
        self.source = source

    def by_name(self, name: str) -> List[dict]:
        """All series of one metric family, in snapshot order."""
        return [s for s in self.series if s["name"] == name]

    def value(self, name: str, **labels: str) -> Optional[float]:
        """A scalar series value, or ``None`` when absent."""
        for s in self.by_name(name):
            if s.get("labels", {}) == labels:
                return s.get("value")
        return None


def _series_from_prometheus(text: str) -> List[dict]:
    """Lift parsed Prometheus samples into snapshot-style series dicts.

    Histogram bucket/sum/count samples are folded back into one series
    per label set, so the renderer sees the same shape as the JSONL
    reader produces.
    """
    samples = parse_prometheus(text)
    series: List[dict] = []
    histograms: Dict[tuple, dict] = {}
    for (name, labelitems), value in samples.items():
        labels = dict(labelitems)
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is None:
                continue
            key_labels = {k: v for k, v in labels.items() if k != "le"}
            key = (base, tuple(sorted(key_labels.items())))
            hist = histograms.setdefault(
                key,
                {
                    "name": base,
                    "type": "histogram",
                    "help": "",
                    "labels": key_labels,
                    "sum": 0.0,
                    "count": 0,
                    "buckets": [],
                },
            )
            if suffix == "_sum":
                hist["sum"] = value
            elif suffix == "_count":
                hist["count"] = int(value)
            else:
                edge = labels.get("le", "+Inf")
                hist["buckets"].append([edge, int(value)])
            break
        else:
            series.append(
                {"name": name, "type": "scalar", "help": "", "labels": labels, "value": value}
            )
    series.extend(histograms.values())
    return series


def load_telemetry_dir(directory: Union[str, Path]) -> TelemetryStats:
    """Load a telemetry directory written by the CLI or exporters."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ReproError(f"telemetry directory not found: {directory}")
    jsonl = directory / JSONL_FILENAME
    prom = directory / PROMETHEUS_FILENAME
    if jsonl.exists():
        series = read_jsonl_snapshot(jsonl)
        source = jsonl.name
    elif prom.exists():
        series = _series_from_prometheus(prom.read_text(encoding="utf-8"))
        source = prom.name
    else:
        series = []
        source = "(no metrics snapshot)"
    cells_path = directory / CELLS_FILENAME
    cells = read_cells_jsonl(cells_path) if cells_path.exists() else []
    if not series and not cells:
        raise ReproError(
            f"no telemetry found in {directory} "
            f"(expected {JSONL_FILENAME}, {PROMETHEUS_FILENAME} or {CELLS_FILENAME})"
        )
    return TelemetryStats(series=series, cells=cells, source=source)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


def render_stats(stats: TelemetryStats) -> str:
    """Render the stats tables for the CLI."""
    lines: List[str] = [f"telemetry source: {stats.source}"]

    events = stats.by_name("repro_sim_events_total")
    if events:
        lines += ["", "event counters", f"  {'event':<12} {'count':>10}", "  " + "-" * 23]
        for s in events:
            lines.append(f"  {s['labels'].get('event', ''):<12} {_fmt(s['value']):>10}")
        lines.append(f"  {'total':<12} {_fmt(sum(s['value'] for s in events)):>10}")

    pools = [s["labels"]["pool"] for s in stats.by_name("repro_pool_busy_cores")]
    if pools:
        lines += [
            "",
            "per-pool gauges (at last sample)",
            f"  {'pool':<10} {'busy cores':>10} {'util':>7} {'waiting':>8} {'suspended':>10} "
            f"{'queue peak':>10}",
            "  " + "-" * 60,
        ]
        for pool in pools:
            busy = stats.value("repro_pool_busy_cores", pool=pool) or 0
            util = stats.value("repro_pool_utilization", pool=pool) or 0.0
            waiting = stats.value("repro_pool_waiting_jobs", pool=pool) or 0
            suspended = stats.value("repro_pool_suspended_jobs", pool=pool) or 0
            peak = stats.value("repro_wait_queue_peak_depth", pool=pool)
            peak_text = _fmt(peak) if peak is not None else "-"
            lines.append(
                f"  {pool:<10} {_fmt(busy):>10} {util:>7.2f} {_fmt(waiting):>8} "
                f"{_fmt(suspended):>10} {peak_text:>10}"
            )
        cluster = stats.value("repro_cluster_utilization")
        minutes = stats.value("repro_sim_minutes")
        if cluster is not None:
            lines.append(f"  cluster utilization {cluster:.2f}")
        if minutes is not None:
            lines.append(f"  simulated minutes   {_fmt(minutes)}")

    for name, title in (
        ("repro_wait_duration_minutes", "wait episodes (minutes)"),
        ("repro_suspension_duration_minutes", "suspension episodes (minutes)"),
    ):
        hists = [s for s in stats.by_name(name) if s.get("count")]
        if hists:
            lines += ["", title, f"  {'pool':<10} {'episodes':>9} {'mean':>8}", "  " + "-" * 29]
            for s in hists:
                mean = s["sum"] / s["count"] if s["count"] else 0.0
                lines.append(
                    f"  {s['labels'].get('pool', ''):<10} {s['count']:>9} {mean:>8.1f}"
                )

    eps = stats.value("repro_engine_events_per_second")
    if eps is not None:
        lines += ["", "engine profile"]
        wall = stats.value("repro_engine_wall_seconds")
        handler_seconds = stats.by_name("repro_engine_handler_seconds_total")
        handler_events = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in stats.by_name("repro_engine_handler_events_total")
        }
        for s in sorted(handler_seconds, key=lambda s: -s["value"]):
            count = handler_events.get(tuple(sorted(s["labels"].items())), 0)
            lines.append(
                f"  {s['labels'].get('handler', ''):<14} {_fmt(count):>10} events "
                f"{s['value']:>9.3f}s"
            )
        wall_text = f" in {wall:.3f}s wall" if wall is not None else ""
        lines.append(f"  throughput {eps:,.0f} events/sec{wall_text}")

    if stats.cells:
        provenances = [_cell_provenance(c) for c in stats.cells]
        sim_seconds = sum(
            c.get("wall_seconds", 0.0)
            for c, p in zip(stats.cells, provenances)
            if p == "computed"
        )
        lines += [
            "",
            "experiment cells",
            f"  {'scenario':<18} {'policy':<16} {'scheduler':<14} {'seconds':>8} {'source':>10}",
            "  " + "-" * 70,
        ]
        for c, provenance in zip(stats.cells, provenances):
            lines.append(
                f"  {c.get('scenario', ''):<18} {c.get('policy', ''):<16} "
                f"{c.get('scheduler', ''):<14} {c.get('wall_seconds', 0.0):>8.2f} "
                f"{_PROVENANCE_LABELS.get(provenance, provenance):>10}"
            )
        split = ", ".join(
            f"{provenances.count(kind)} {label}"
            for kind, label in _PROVENANCE_LABELS.items()
            if provenances.count(kind)
        )
        lines.append(
            f"  {len(stats.cells)} cells ({split}), "
            f"{sim_seconds:.2f}s simulated this run"
        )

    return "\n".join(lines)


#: Provenance value -> rendered source label, in summary-line order.
_PROVENANCE_LABELS = {
    "computed": "simulated",
    "cache_hit": "cache",
    "checkpoint": "checkpoint",
    "claimed_elsewhere": "elsewhere",
}


def _cell_provenance(record: dict) -> str:
    """Provenance of one cells.jsonl record, tolerating pre-provenance files."""
    provenance = record.get("provenance")
    if provenance:
        return provenance
    return "cache_hit" if record.get("from_cache") else "computed"
