"""Progress heartbeats and per-cell telemetry for experiment grids.

A year-scale grid run is minutes-to-hours of silence without this:
:class:`ProgressReporter` is a callable the experiment execution
backend (:func:`repro.experiments.parallel.execute_cells`) invokes
once per finished cell, printing ``done/total``, cache provenance,
elapsed wall time and an ETA to a stream (stderr by default) —
never touching stdout, which belongs to the experiment's tables.

:func:`write_cells_jsonl` persists the same per-cell facts (scenario,
policy, scheduler, wall seconds, cache provenance, derived seed) into
the run's telemetry directory so ``repro stats`` can reconstruct where
a sweep's time went after the fact.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List, Optional, TextIO, Union

from ..fsutil import atomic_write_text

__all__ = [
    "ProgressReporter",
    "cell_provenance",
    "write_cells_jsonl",
    "read_cells_jsonl",
    "CELLS_FILENAME",
]

CELLS_FILENAME = "cells.jsonl"


def cell_provenance(cell) -> str:
    """The provenance of anything cell-shaped, ``"computed"`` if unknown.

    Reads the explicit ``provenance`` attribute when present
    (:class:`~repro.experiments.parallel.CellOutcome`,
    :class:`~repro.experiments.runner.ExperimentCell`), otherwise falls
    back to the legacy ``from_cache`` / ``from_checkpoint`` booleans so
    duck-typed callers keep working.
    """
    provenance = getattr(cell, "provenance", None)
    if provenance:
        return provenance
    if getattr(cell, "from_cache", False):
        return "cache_hit"
    if getattr(cell, "from_checkpoint", False):
        return "checkpoint"
    return "computed"


class ProgressReporter:
    """Prints one heartbeat line per completed experiment cell.

    The reporter is duck-typed to the execution backend's ``progress``
    hook: it is simply called with each
    :class:`~repro.experiments.parallel.CellOutcome` as it completes
    (cache hits included).  ``add_total`` is optional pre-registration
    of upcoming work so the heartbeat can show ``done/total`` and an
    ETA; without it, only the running count is shown.

    Args:
        stream: where heartbeats go; defaults to ``sys.stderr``.
        min_interval_seconds: suppress heartbeats closer together than
            this (the final cell always prints); 0 prints every cell.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_seconds: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval_seconds
        self._clock = clock
        self._start = clock()
        self._last_print = -float("inf")
        self.total = 0
        self.done = 0
        self.cached = 0
        self.elsewhere = 0
        self.sim_seconds = 0.0

    def add_total(self, count: int) -> None:
        """Pre-register ``count`` upcoming cells (may be called per batch)."""
        self.total += count

    def __call__(self, outcome) -> None:
        """Record one finished cell and maybe print a heartbeat."""
        self.done += 1
        provenance = cell_provenance(outcome)
        if provenance in ("cache_hit", "checkpoint"):
            self.cached += 1
        elif provenance == "claimed_elsewhere":
            self.elsewhere += 1
        else:
            self.sim_seconds += getattr(outcome, "wall_seconds", 0.0)
        now = self._clock()
        finished = self.total and self.done >= self.total
        if not finished and now - self._last_print < self._min_interval:
            return
        self._last_print = now
        self._stream.write(self._line(now) + "\n")
        self._stream.flush()

    def _line(self, now: float) -> str:
        elapsed = now - self._start
        if self.total:
            head = f"[repro] {self.done}/{self.total} cells"
            remaining = self.total - self.done
            if self.done and remaining > 0:
                eta = elapsed / self.done * remaining
                tail = f"elapsed {elapsed:.1f}s, eta {eta:.1f}s"
            else:
                tail = f"elapsed {elapsed:.1f}s"
        else:
            head = f"[repro] {self.done} cells"
            tail = f"elapsed {elapsed:.1f}s"
        split = f"{self.cached} cached"
        if self.elsewhere:
            split += f", {self.elsewhere} elsewhere"
        return f"{head} ({split}), {tail}"


def write_cells_jsonl(cells, directory: Union[str, Path]) -> Path:
    """Write per-cell execution telemetry (one JSON object per cell).

    Accepts anything with the cell attribute set shared by
    :class:`~repro.experiments.parallel.CellOutcome` and
    :class:`~repro.experiments.runner.ExperimentCell`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / CELLS_FILENAME
    atomic_write_text(
        path,
        "".join(
            json.dumps(
                {
                    "scenario": cell.scenario_name,
                    "policy": cell.policy_name,
                    "policy_spec": getattr(cell, "policy_spec", None),
                    "scheduler": cell.scheduler_name,
                    "wall_seconds": round(cell.wall_seconds, 6),
                    "from_cache": bool(cell.from_cache),
                    "provenance": cell_provenance(cell),
                    "seed": cell.seed,
                },
                sort_keys=True,
            )
            + "\n"
            for cell in cells
        ),
    )
    return path


def read_cells_jsonl(path: Union[str, Path]) -> List[dict]:
    """Load per-cell telemetry previously written by :func:`write_cells_jsonl`."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
