"""Serialising a :class:`MetricsRegistry` to disk, and reading it back.

Two formats, chosen for the two consumers a scheduler deployment
actually has:

* **Prometheus text exposition** (``metrics.prom``) — the lingua
  franca of monitoring stacks; a file a node exporter's textfile
  collector (or a human) can pick up directly.
* **JSONL snapshots** (``metrics.jsonl``) — one self-describing JSON
  object per line (header line first, then one line per series), for
  programmatic post-analysis and the ``repro stats`` renderer.

Both exporters come with a matching reader used by the round-trip
tests and ``repro stats``; the readers normalise into the same plain
structure (:class:`SeriesValue` mappings), so a telemetry directory
can be consumed regardless of which file survived.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ReproError
from ..fsutil import atomic_write_text
from .registry import MetricsRegistry

__all__ = [
    "to_prometheus",
    "write_prometheus",
    "parse_prometheus",
    "snapshot_lines",
    "write_jsonl_snapshot",
    "read_jsonl_snapshot",
    "write_telemetry_dir",
    "PROMETHEUS_FILENAME",
    "JSONL_FILENAME",
]

PROMETHEUS_FILENAME = "metrics.prom"
JSONL_FILENAME = "metrics.jsonl"

#: Header line identifying a repro JSONL telemetry snapshot.
_JSONL_HEADER = {"snapshot": "repro-telemetry", "version": 1}


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.series():
            labels = dict(zip(family.labelnames, label_values))
            if family.kind == "histogram":
                for edge, cumulative in child.cumulative():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(edge)
                    lines.append(
                        f"{family.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_labels_text(labels)} {child.count}")
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write :func:`to_prometheus` output to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, to_prometheus(registry))
    return path


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ReproError(f"malformed prometheus labels: {text!r}")
        j = eq + 2
        value_chars: List[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                esc = text[j + 1]
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(esc, esc))
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        labels[name] = "".join(value_chars)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse Prometheus text back into ``{(name, sorted labels): value}``.

    Covers the subset :func:`to_prometheus` emits (which is all this
    repository needs); histogram bucket/sum/count samples appear under
    their suffixed names exactly as exposed.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            rest = line[line.index("{") + 1 :]
            label_text = rest[: rest.rindex("}")]
            value_text = rest[rest.rindex("}") + 1 :].strip()
            labels = _parse_labels(label_text)
        else:
            name, value_text = line.split(None, 1)
            labels = {}
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples[(name, tuple(sorted(labels.items())))] = value
    return samples


def snapshot_lines(registry: MetricsRegistry) -> List[dict]:
    """The JSONL snapshot as a list of dicts (header first)."""
    lines: List[dict] = [dict(_JSONL_HEADER)]
    for family in registry.as_dict()["families"]:
        for series in family["series"]:
            record = {
                "name": family["name"],
                "type": family["type"],
                "help": family["help"],
                "labels": series["labels"],
            }
            if family["type"] == "histogram":
                record["sum"] = series["sum"]
                record["count"] = series["count"]
                record["buckets"] = series["buckets"]
            else:
                record["value"] = series["value"]
            lines.append(record)
    return lines


def write_jsonl_snapshot(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write the registry as a JSONL snapshot; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # A scrape must never observe a half-written snapshot, even if this
    # process is killed mid-export.
    atomic_write_text(
        path,
        "".join(json.dumps(record, sort_keys=True) + "\n" for record in snapshot_lines(registry)),
    )
    return path


def read_jsonl_snapshot(path: Union[str, Path]) -> List[dict]:
    """Read a JSONL snapshot back as series dicts (header validated, dropped)."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if lineno == 0:
                if record.get("snapshot") != _JSONL_HEADER["snapshot"]:
                    raise ReproError(f"{path} is not a repro telemetry snapshot")
                continue
            records.append(record)
    return records


def write_telemetry_dir(
    registry: MetricsRegistry, directory: Union[str, Path]
) -> Tuple[Path, Path]:
    """Export both formats into ``directory``; returns (prom, jsonl) paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    prom = write_prometheus(registry, directory / PROMETHEUS_FILENAME)
    jsonl = write_jsonl_snapshot(registry, directory / JSONL_FILENAME)
    return prom, jsonl
