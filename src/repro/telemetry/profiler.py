"""Opt-in wall-clock profiling of the engine's event handlers.

The engine's run loop is a dispatch over five event kinds (submit,
finish, wait-timeout, pool-arrival, sample).  When
:attr:`~repro.telemetry.instrumentation.Instrumentation.profile` is
set, the engine times every handler invocation with
``time.perf_counter`` and feeds the deltas here; the profiler reduces
them to per-handler totals and an overall events/sec figure — the
"where does engine time go" answer the ROADMAP's as-fast-as-the-
hardware-allows goal needs before any optimisation work.

Profiling is observational only: it reads the wall clock but never the
simulation clock or RNG, so enabling it cannot change simulated
results (the measured numbers themselves are of course run-dependent
wall-clock quantities and are excluded from any determinism
comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["EngineProfiler", "HandlerStats", "ProfileReport"]


@dataclass(frozen=True)
class HandlerStats:
    """Aggregate timing of one event-handler branch."""

    handler: str
    events: int
    seconds: float

    @property
    def mean_micros(self) -> float:
        """Mean handler latency in microseconds."""
        return (self.seconds / self.events) * 1e6 if self.events else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """The profiler's reduced output for one finished run."""

    handlers: Tuple[HandlerStats, ...]
    wall_seconds: float

    @property
    def total_events(self) -> int:
        """Events handled across all branches."""
        return sum(h.events for h in self.handlers)

    @property
    def events_per_second(self) -> float:
        """Overall engine throughput (events handled / wall seconds)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds

    def render(self) -> str:
        """A plain-text table for CLI output."""
        lines = [
            f"{'handler':<14} {'events':>10} {'seconds':>9} {'mean us':>9}",
            "-" * 45,
        ]
        for stats in sorted(self.handlers, key=lambda h: -h.seconds):
            lines.append(
                f"{stats.handler:<14} {stats.events:>10} "
                f"{stats.seconds:>9.3f} {stats.mean_micros:>9.1f}"
            )
        lines.append(
            f"total: {self.total_events} events in {self.wall_seconds:.3f}s "
            f"wall ({self.events_per_second:,.0f} events/sec)"
        )
        return "\n".join(lines)


class EngineProfiler:
    """Accumulates per-handler wall-clock timings for one engine run."""

    __slots__ = ("_seconds", "_events", "_run_start", "wall_seconds")

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._events: Dict[str, int] = {}
        self._run_start: Optional[float] = None
        self.wall_seconds = 0.0

    def start(self) -> None:
        """Mark the start of the run loop."""
        self._run_start = time.perf_counter()

    def stop(self) -> None:
        """Mark the end of the run loop."""
        if self._run_start is not None:
            self.wall_seconds = time.perf_counter() - self._run_start

    def record(self, handler: str, seconds: float) -> None:
        """Fold one handler invocation into the totals."""
        self._seconds[handler] = self._seconds.get(handler, 0.0) + seconds
        self._events[handler] = self._events.get(handler, 0) + 1

    def report(self) -> ProfileReport:
        """Reduce the accumulated timings into a :class:`ProfileReport`."""
        handlers: List[HandlerStats] = [
            HandlerStats(handler=name, events=self._events[name], seconds=total)
            for name, total in self._seconds.items()
        ]
        return ProfileReport(handlers=tuple(handlers), wall_seconds=self.wall_seconds)

    def export_to(self, registry) -> None:
        """Publish the report into a metrics registry.

        Emits ``repro_engine_handler_seconds_total`` /
        ``repro_engine_handler_events_total`` (labelled by handler) and
        the ``repro_engine_events_per_second`` /
        ``repro_engine_wall_seconds`` gauges.
        """
        report = self.report()
        seconds = registry.counter(
            "repro_engine_handler_seconds_total",
            "Wall-clock seconds spent in each engine event handler",
            labelnames=("handler",),
        )
        events = registry.counter(
            "repro_engine_handler_events_total",
            "Events dispatched to each engine event handler",
            labelnames=("handler",),
        )
        for stats in report.handlers:
            seconds.labels(stats.handler).inc(stats.seconds)
            events.labels(stats.handler).inc(stats.events)
        registry.gauge(
            "repro_engine_events_per_second",
            "Engine throughput over the whole run (events handled per wall second)",
        ).set(report.events_per_second)
        registry.gauge(
            "repro_engine_wall_seconds",
            "Wall-clock seconds the engine run loop took",
        ).set(report.wall_seconds)
