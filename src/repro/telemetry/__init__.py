"""Typed, deterministic instrumentation for the simulator.

The telemetry subsystem is strictly *observational*: enabling any part
of it never touches the simulation RNG, never advances the simulated
clock, and never changes a single field of a
:class:`~repro.simulator.results.SimulationResult`.  That property is
asserted in CI (telemetry-on runs must be bit-identical to
telemetry-off runs).

Layers, bottom to top:

* :mod:`.registry` — counters, gauges and fixed-bucket histograms in a
  deterministic-iteration :class:`MetricsRegistry`.
* :mod:`.instrumentation` — the :class:`Instrumentation` aggregate the
  simulator accepts (event observers + optional registry + profiler
  switch).
* :mod:`.hooks` — :class:`EngineTelemetry`, the single owner of the
  metric schema the engine/pools/queues record into.
* :mod:`.profiler` — opt-in wall-clock timing of engine handlers.
* :mod:`.exporters` — Prometheus text and JSONL snapshot writers and
  their readers.
* :mod:`.progress` — per-cell heartbeats and ``cells.jsonl`` for
  experiment grids.
* :mod:`.stats` — the ``repro stats`` loader/renderer.

This package deliberately imports nothing from :mod:`repro.simulator`
at runtime; the dependency points the other way (the simulator's
config accepts an :class:`Instrumentation`).
"""

from .exporters import (
    JSONL_FILENAME,
    PROMETHEUS_FILENAME,
    parse_prometheus,
    read_jsonl_snapshot,
    snapshot_lines,
    to_prometheus,
    write_jsonl_snapshot,
    write_prometheus,
    write_telemetry_dir,
)
from .hooks import EngineTelemetry
from .instrumentation import NO_INSTRUMENTATION, Instrumentation
from .profiler import EngineProfiler, HandlerStats, ProfileReport
from .progress import (
    CELLS_FILENAME,
    ProgressReporter,
    cell_provenance,
    read_cells_jsonl,
    write_cells_jsonl,
)
from .registry import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .stats import TelemetryStats, load_telemetry_dir, render_stats

__all__ = [
    # registry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_DURATION_BUCKETS",
    # instrumentation aggregate
    "Instrumentation",
    "NO_INSTRUMENTATION",
    # engine-facing hooks + profiler
    "EngineTelemetry",
    "EngineProfiler",
    "HandlerStats",
    "ProfileReport",
    # exporters
    "to_prometheus",
    "write_prometheus",
    "parse_prometheus",
    "snapshot_lines",
    "write_jsonl_snapshot",
    "read_jsonl_snapshot",
    "write_telemetry_dir",
    "PROMETHEUS_FILENAME",
    "JSONL_FILENAME",
    # progress / per-cell telemetry
    "ProgressReporter",
    "cell_provenance",
    "write_cells_jsonl",
    "read_cells_jsonl",
    "CELLS_FILENAME",
    # stats
    "load_telemetry_dir",
    "render_stats",
    "TelemetryStats",
]
