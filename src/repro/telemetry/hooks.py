"""The engine-facing telemetry surface.

:class:`EngineTelemetry` owns every metric the simulator records and
exposes the narrow set of hook methods the engine, pools and queues
call.  Keeping the metric names, label sets and bucket edges in one
place (rather than scattered through the engine) means exporters and
``repro stats`` can rely on a stable schema, and the simulator files
only ever see tiny hook calls.

All hooks are strictly read-only with respect to the simulation: they
take already-computed values (never live mutable simulator objects
they could perturb), consult no clock and no RNG.

Metric schema (all names prefixed ``repro_``):

==============================================  =========  ==========================
``repro_sim_events_total{event=}``              counter    emitted simulation events
``repro_engine_queue_events_total{kind=}``      counter    engine event-queue pops
``repro_policy_decisions_total{policy=,action=}``  counter  rescheduling-policy decisions
``repro_sim_samples_total``                     counter    sampler ticks
``repro_sim_minutes``                           gauge      final simulated time
``repro_jobs_outstanding``                      gauge      jobs left (0 after a run)
``repro_cluster_utilization``                   gauge      last sampled busy fraction
``repro_pool_busy_cores{pool=}``                gauge      last sampled busy cores
``repro_pool_utilization{pool=}``               gauge      last sampled busy fraction
``repro_pool_waiting_jobs{pool=}``              gauge      last sampled wait-queue depth
``repro_pool_suspended_jobs{pool=}``            gauge      last sampled suspended jobs
``repro_wait_duration_minutes{pool=}``          histogram  completed wait episodes
``repro_suspension_duration_minutes{pool=}``    histogram  completed suspension episodes
``repro_wait_queue_pushes_total{pool=}``        counter    lifetime queue insertions
``repro_wait_queue_peak_depth{pool=}``          gauge      high-water queue depth
``repro_wait_queue_compactions_total{pool=}``   counter    lazy-removal heap rebuilds
==============================================  =========  ==========================

plus the profiler families documented in
:meth:`repro.telemetry.profiler.EngineProfiler.export_to`.
"""

from __future__ import annotations

from typing import Sequence

from .registry import DEFAULT_DURATION_BUCKETS, MetricsRegistry

__all__ = ["EngineTelemetry"]


class EngineTelemetry:
    """Records one engine run into a :class:`MetricsRegistry`."""

    __slots__ = (
        "registry",
        "_events",
        "_queue_events",
        "_policy_decisions",
        "_samples",
        "_sim_minutes",
        "_outstanding",
        "_cluster_util",
        "_pool_busy",
        "_pool_util",
        "_pool_waiting",
        "_pool_suspended",
        "_wait_hist",
        "_suspend_hist",
    )

    def __init__(self, registry: MetricsRegistry, pool_ids: Sequence[str]) -> None:
        self.registry = registry
        self._events = registry.counter(
            "repro_sim_events_total",
            "Simulation events emitted, by event type",
            labelnames=("event",),
        )
        self._queue_events = registry.counter(
            "repro_engine_queue_events_total",
            "Engine event-queue pops, by event kind",
            labelnames=("kind",),
        )
        self._policy_decisions = registry.counter(
            "repro_policy_decisions_total",
            "Rescheduling-policy decisions, by policy and action",
            labelnames=("policy", "action"),
        )
        self._samples = registry.counter(
            "repro_sim_samples_total", "State-sampler ticks"
        )
        self._sim_minutes = registry.gauge(
            "repro_sim_minutes", "Simulated minutes elapsed"
        )
        self._outstanding = registry.gauge(
            "repro_jobs_outstanding", "Jobs not yet finished"
        )
        self._cluster_util = registry.gauge(
            "repro_cluster_utilization", "Cluster-wide busy-core fraction at last sample"
        )
        self._pool_busy = registry.gauge(
            "repro_pool_busy_cores", "Busy cores at last sample", labelnames=("pool",)
        )
        self._pool_util = registry.gauge(
            "repro_pool_utilization",
            "Busy-core fraction at last sample",
            labelnames=("pool",),
        )
        self._pool_waiting = registry.gauge(
            "repro_pool_waiting_jobs",
            "Wait-queue depth at last sample",
            labelnames=("pool",),
        )
        self._pool_suspended = registry.gauge(
            "repro_pool_suspended_jobs",
            "Suspended jobs at last sample",
            labelnames=("pool",),
        )
        self._wait_hist = registry.histogram(
            "repro_wait_duration_minutes",
            "Completed wait-queue episodes (minutes)",
            labelnames=("pool",),
            buckets=DEFAULT_DURATION_BUCKETS,
        )
        self._suspend_hist = registry.histogram(
            "repro_suspension_duration_minutes",
            "Completed suspension episodes (minutes)",
            labelnames=("pool",),
            buckets=DEFAULT_DURATION_BUCKETS,
        )
        # Touch every per-pool series up front so exports list all pools
        # in cluster order even when a pool saw no activity.
        for pool_id in pool_ids:
            self._pool_busy.labels(pool_id)
            self._pool_util.labels(pool_id)
            self._pool_waiting.labels(pool_id)
            self._pool_suspended.labels(pool_id)

    # -- engine hooks -------------------------------------------------------------

    def count_event(self, event: str) -> None:
        """One emitted simulation event (same vocabulary as SimEvent)."""
        self._events.labels(event).inc()

    def count_queue_event(self, kind_name: str) -> None:
        """One engine event-queue pop."""
        self._queue_events.labels(kind_name).inc()

    def count_policy_decision(self, policy_name: str, action: str) -> None:
        """One rescheduling decision (on_suspend / on_wait_timeout)."""
        self._policy_decisions.labels(policy_name, action).inc()

    def on_sample(
        self,
        now: float,
        outstanding: int,
        total_cores: int,
        pool_ids: Sequence[str],
        per_pool_busy: Sequence[int],
        per_pool_total: Sequence[int],
        per_pool_waiting: Sequence[int],
        per_pool_suspended: Sequence[int],
    ) -> None:
        """Refresh the sampled gauges on an ``EVENT_SAMPLE`` tick."""
        self._samples.inc()
        self._sim_minutes.set(now)
        self._outstanding.set(outstanding)
        busy = 0
        for pool_id, pool_busy, pool_total, waiting, suspended in zip(
            pool_ids, per_pool_busy, per_pool_total, per_pool_waiting, per_pool_suspended
        ):
            busy += pool_busy
            self._pool_busy.labels(pool_id).set(pool_busy)
            self._pool_util.labels(pool_id).set(
                pool_busy / pool_total if pool_total else 0.0
            )
            self._pool_waiting.labels(pool_id).set(waiting)
            self._pool_suspended.labels(pool_id).set(suspended)
        self._cluster_util.set(busy / total_cores if total_cores else 0.0)

    # -- pool hooks ---------------------------------------------------------------

    def observe_wait(self, pool_id: str, minutes: float) -> None:
        """One completed wait episode (queue entry to start/dequeue/cancel)."""
        self._wait_hist.labels(pool_id).observe(minutes)

    def observe_suspension(self, pool_id: str, minutes: float) -> None:
        """One completed suspension episode (suspend to resume/detach/cancel)."""
        self._suspend_hist.labels(pool_id).observe(minutes)

    # -- end-of-run ---------------------------------------------------------------

    def finalize(
        self,
        now: float,
        outstanding: int,
        pool_ids: Sequence[str],
        queue_stats,
        profiler=None,
    ) -> None:
        """Record end-of-run facts: final clock, queue statistics, profile.

        Args:
            now: final simulated minute.
            outstanding: jobs still unfinished (0 for a completed run).
            pool_ids: cluster pool order.
            queue_stats: mapping pool id -> that pool's
                :class:`~repro.simulator.queues.QueueStats`.
            profiler: the run's
                :class:`~repro.telemetry.profiler.EngineProfiler`, if
                profiling was enabled.
        """
        self._sim_minutes.set(now)
        self._outstanding.set(outstanding)
        pushes = self.registry.counter(
            "repro_wait_queue_pushes_total",
            "Lifetime wait-queue insertions",
            labelnames=("pool",),
        )
        peak = self.registry.gauge(
            "repro_wait_queue_peak_depth",
            "High-water wait-queue depth over the run",
            labelnames=("pool",),
        )
        compactions = self.registry.counter(
            "repro_wait_queue_compactions_total",
            "Lazy-removal heap compactions",
            labelnames=("pool",),
        )
        for pool_id in pool_ids:
            stats = queue_stats[pool_id]
            pushes.labels(pool_id).inc(stats.pushes)
            peak.labels(pool_id).set(stats.peak_depth)
            compactions.labels(pool_id).inc(stats.compactions)
        if profiler is not None:
            profiler.export_to(self.registry)
