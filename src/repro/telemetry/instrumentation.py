"""The typed instrumentation aggregate attached to a simulation.

Historically the engine accepted a single untyped
``SimulationConfig.observer: Optional[object]`` and every engine call
site guarded emission with ``if self._observer is not None``.
:class:`Instrumentation` replaces that: one immutable aggregate naming
*everything* that watches a run —

* ``observers`` — any number of event observers (objects with
  ``on_event(SimEvent)`` / ``close()``, e.g.
  :class:`~repro.simulator.observer.EventLog`), all receiving every
  event in subscription order;
* ``metrics`` — an optional
  :class:`~repro.telemetry.registry.MetricsRegistry` the engine
  records counters, gauges and histograms into;
* ``profile`` — opt-in wall-clock profiling of the engine's event
  handlers (see :mod:`repro.telemetry.profiler`).

Instrumentation is strictly read-only: it never touches the simulation
RNG and cannot change any :class:`~repro.simulator.results.SimulationResult`
field.  The old ``SimulationConfig(observer=...)`` keyword has been
removed after its deprecation cycle; passing it raises
:class:`~repro.errors.ConfigurationError` with the migration hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:  # avoid a runtime cycle with repro.simulator
    from ..simulator.observer import EventObserver
    from .registry import MetricsRegistry

__all__ = ["Instrumentation", "NO_INSTRUMENTATION"]


@dataclass(frozen=True)
class Instrumentation:
    """Everything observing one simulation run.

    Attributes:
        observers: event observers, each receiving every
            :class:`~repro.simulator.observer.SimEvent` in simulated-time
            order; fan-out preserves this tuple's order.
        metrics: registry receiving the engine's quantitative telemetry
            (per-event-type counters, per-pool gauges, duration
            histograms); ``None`` disables metrics collection.
        profile: when True, the engine wall-clock-profiles each event
            handler branch and (if ``metrics`` is set) exports the
            timings and events/sec into the registry.
    """

    observers: Tuple["EventObserver", ...] = ()
    metrics: Optional["MetricsRegistry"] = None
    profile: bool = False

    def __post_init__(self) -> None:
        observers = tuple(self.observers)
        for obs in observers:
            if not callable(getattr(obs, "on_event", None)):
                raise ConfigurationError(
                    f"observer {obs!r} has no callable on_event(event) method"
                )
        object.__setattr__(self, "observers", observers)
        if self.metrics is not None and not hasattr(self.metrics, "collect"):
            raise ConfigurationError(
                f"metrics must be a MetricsRegistry-like object, got {self.metrics!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether attaching this instrumentation does anything at all."""
        return bool(self.observers) or self.metrics is not None or self.profile

    def with_observer(self, observer: "EventObserver") -> "Instrumentation":
        """A copy with ``observer`` appended to the fan-out tuple."""
        return Instrumentation(
            observers=self.observers + (observer,),
            metrics=self.metrics,
            profile=self.profile,
        )


#: The inert default: no observers, no metrics, no profiling.
NO_INSTRUMENTATION = Instrumentation()
