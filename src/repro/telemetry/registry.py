"""Typed metrics primitives: counters, gauges and fixed-bucket histograms.

The registry is the in-memory half of the telemetry subsystem: the
engine (and any user code) records into it, the exporters
(:mod:`repro.telemetry.exporters`) serialise it.  The design follows
the Prometheus data model — metric *families* carry a name, a help
string and a tuple of label names; each distinct label-value
combination is one *series* — because that is what every scheduler
monitoring stack the related work describes (Reuther et al.'s
scheduler monitors, RLScheduler's per-step metrics) ultimately speaks.

Three properties matter here more than generality:

* **Deterministic iteration.**  Families iterate in registration order
  and series in first-touch order, so two identical runs export
  byte-identical snapshots (modulo wall-clock profiler values).  No
  dict-order or hash-seed dependence anywhere.
* **Read-only with respect to the simulation.**  Recording never
  consults a clock or an RNG; a registry can therefore be attached to
  an engine without perturbing any simulated quantity.
* **Fixed histogram buckets.**  Bucket edges are frozen at creation
  (no adaptive resizing), so histograms from different runs, pools or
  processes are directly mergeable and comparable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
]

#: Default bucket edges (minutes) for duration histograms.  Roughly
#: geometric from one minute to a day, matching the dynamic range of
#: the paper's wait/suspension times.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1440.0
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ConfigurationError(f"invalid metric name: {name!r}")
    return name


class _Metric:
    """Common machinery of one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._series: Dict[Tuple[str, ...], object] = {}

    def _child_value(self):
        raise NotImplementedError

    def labels(self, *values: object, **kwargs: object):
        """The series for one label-value combination (created on first use)."""
        if kwargs:
            if values:
                raise ConfigurationError(
                    f"{self.name}: pass label values positionally or by name, not both"
                )
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as exc:
                raise ConfigurationError(
                    f"{self.name}: missing label {exc.args[0]!r} "
                    f"(labels: {self.labelnames})"
                ) from None
            if len(kwargs) != len(self.labelnames):
                extra = set(kwargs) - set(self.labelnames)
                raise ConfigurationError(f"{self.name}: unknown labels {sorted(extra)}")
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._series.get(key)
        if child is None:
            child = self._child_value()
            self._series[key] = child
        return child

    def series(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """(label values, series object) pairs in first-touch order."""
        return iter(self._series.items())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, series={len(self._series)})"


class _CounterSeries:
    """One monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up; got inc({amount})")
        self.value += amount


class Counter(_Metric):
    """A monotonically increasing count (events seen, items processed)."""

    kind = "counter"

    def _child_value(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series (only valid without labels)."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        """Value of the unlabelled series (0.0 if never incremented)."""
        child = self._series.get(())
        return child.value if child is not None else 0.0


class _GaugeSeries:
    """One settable series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """A value that can go up and down (queue depth, utilization)."""

    kind = "gauge"

    def _child_value(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: float) -> None:
        """Set the unlabelled series (only valid without labels)."""
        self.labels().set(value)

    @property
    def value(self) -> float:
        """Value of the unlabelled series (0.0 if never set)."""
        child = self._series.get(())
        return child.value if child is not None else 0.0


class _HistogramSeries:
    """One histogram series: per-bucket counts plus sum and count."""

    __slots__ = ("edges", "bucket_counts", "sum", "count")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self.edges = edges
        # one slot per finite edge plus the +Inf overflow slot
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper edge, cumulative count) pairs; last edge is +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for edge, bucket in zip(self.edges, self.bucket_counts):
            running += bucket
            out.append((edge, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram(_Metric):
    """A distribution over fixed, registration-time bucket edges."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ConfigurationError(f"{name}: histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"{name}: bucket edges must be strictly increasing, got {edges}"
            )
        self.buckets = edges

    def _child_value(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled series (only valid without labels)."""
        self.labels().observe(value)


class MetricsRegistry:
    """An ordered collection of metric families.

    One registry corresponds to one observed run (or one aggregation
    scope).  Families are created through :meth:`counter`,
    :meth:`gauge` and :meth:`histogram`, which are idempotent: asking
    for an existing name returns the existing family, provided kind
    and label names match (a mismatch is a configuration error, never a
    silent second family).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Metric] = {}

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Create or fetch a counter family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Create or fetch a gauge family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> Histogram:
        """Create or fetch a fixed-bucket histogram family."""
        existing = self._families.get(name)
        if existing is not None:
            self._check_match(existing, Histogram, name, labelnames)
            if tuple(float(b) for b in buckets) != existing.buckets:  # type: ignore[attr-defined]
                raise ConfigurationError(
                    f"metric {name!r} re-registered with different buckets"
                )
            return existing  # type: ignore[return-value]
        family = Histogram(name, help, labelnames, buckets)
        self._families[name] = family
        return family

    def _get_or_create(self, cls, name, help, labelnames):
        existing = self._families.get(name)
        if existing is not None:
            self._check_match(existing, cls, name, labelnames)
            return existing
        family = cls(name, help, labelnames)
        self._families[name] = family
        return family

    @staticmethod
    def _check_match(existing: _Metric, cls, name: str, labelnames) -> None:
        if not isinstance(existing, cls) or type(existing) is not cls:
            raise ConfigurationError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        if existing.labelnames != tuple(labelnames):
            raise ConfigurationError(
                f"metric {name!r} re-registered with different labels "
                f"({existing.labelnames} != {tuple(labelnames)})"
            )

    def get(self, name: str) -> Optional[_Metric]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def collect(self) -> Iterator[_Metric]:
        """All families, in registration order."""
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def as_dict(self) -> dict:
        """A plain-data snapshot (the JSONL exporter's source of truth)."""
        families = []
        for family in self.collect():
            series = []
            for label_values, child in family.series():
                labels = dict(zip(family.labelnames, label_values))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": [
                                [edge, count]
                                for edge, count in zip(
                                    list(child.edges) + ["+Inf"],
                                    child.bucket_counts,
                                )
                            ],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            families.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "series": series,
                }
            )
        return {"families": families}

    def __repr__(self) -> str:
        return f"MetricsRegistry(families={len(self._families)})"
