"""Seeded chaos scenarios against a live supervised worker fleet.

A scenario is a *deterministic* fault schedule: from ``(name, seed,
workers)``, :func:`build_schedule` derives the same in-band
:class:`~repro.chaos.plan.ChaosAction` list and the same out-of-band
operations every time, so a failing chaos run can be replayed
bit-for-bit.  :func:`run_scenario` then:

1. computes the grid **serially** for the ground-truth digests;
2. arms the plan (``REPRO_CHAOS_PLAN``) and runs the same grid on a
   real :class:`~repro.fabric.supervisor.SupervisedWorkerBackend`
   subprocess fleet while an injector thread applies the out-of-band
   faults (SIGSTOP freezes, entry corruption, lease truncation);
3. audits the wreckage with :func:`~repro.chaos.invariants.audit_run`
   plus the scenario's own expectations (a kill storm that never
   restarted anything is a failed test of the supervisor, not a
   lucky run);
4. exports ``repro_chaos_*`` counters and the supervisor's recovery
   numbers for ``BENCH_chaos.json``.

The scenario matrix (also rendered in ``docs/robustness.md``):

================ ====================================================
``kill-storm``    three first-incarnation workers SIGKILL themselves
                  between publish and lease release; slot 0 dies at
                  its first compute and then at every restarted
                  boot (persistent crasher).  Expects ≥3 restarts,
                  quarantine, and recovered cells.
``heartbeat-freeze`` every worker's first cell is slowed, one live
                  lease holder is SIGSTOPped past the TTL and resumed
                  only after its cell moved on.  Expects ≥1 takeover.
``corruption``    one publish hits ENOSPC, one is torn (garbage bytes
                  + SIGKILL), one already-published entry is
                  corrupted in place and one live lease truncated.
                  Expects the fleet to re-publish everything.
``straggler``     one worker sleeps through every cell; nobody dies.
                  Expects a clean, takeover-free run.
================ ====================================================
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..experiments.cache import ResultCache
from ..experiments.parallel import run_grid_parallel
from ..fabric.coordinator import run_grid_fabric
from ..fabric.lease import CLAIMED
from ..fabric.presets import build_grid
from ..fabric.supervisor import SupervisedWorkerBackend, SupervisorConfig
from ..fabric.worker import CELL_FLOOR_ENV
from .invariants import ChaosAudit, audit_run, grid_digests
from .plan import CHAOS_PLAN_ENV, ChaosAction, ChaosPlan

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "SCENARIOS",
    "build_schedule",
    "run_scenario",
]

#: Scenario name -> one-line description (the supported matrix).
SCENARIOS: Dict[str, str] = {
    "kill-storm": (
        "SIGKILL three workers in the publish window + one persistent "
        "crasher (restart, backoff, quarantine)"
    ),
    "heartbeat-freeze": (
        "SIGSTOP a live lease holder past the TTL, resume it after the "
        "takeover (stale-lease steal, duplicate publish)"
    ),
    "corruption": (
        "ENOSPC on publish, a torn cache entry, in-place corruption of "
        "a published entry, a truncated live lease (re-publish paths)"
    ),
    "straggler": (
        "one slow worker, no faults (control: nothing should trigger)"
    ),
}

#: Lease TTL for chaos runs — short, so takeovers happen in test time.
CHAOS_LEASE_TTL = 1.0

#: Per-cell wall-time floor giving faults a window to land in.
CHAOS_CELL_FLOOR = 0.05

#: Supervisor budget tuned for second-scale scenarios (same shape as
#: the production default, faster clocks).
CHAOS_SUPERVISOR_CONFIG = SupervisorConfig(
    backoff_base_seconds=0.1,
    backoff_factor=2.0,
    backoff_max_seconds=1.0,
    jitter_fraction=0.25,
    # Quarantine on the third consecutive crash: chaos grids are
    # seconds long, so a production-sized budget would let the grid
    # finish before the crash-looper exhausts it.
    restart_budget=2,
    healthy_uptime_seconds=10.0,
    rescan_budget=1,
    drain_timeout_seconds=5.0,
)


@dataclasses.dataclass(frozen=True)
class ChaosSchedule:
    """The fully-derived fault schedule for one seeded scenario."""

    scenario: str
    seed: int
    workers: int
    actions: Tuple[ChaosAction, ...]
    #: Out-of-band operation names the injector thread performs.
    out_of_band: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "workers": self.workers,
            "actions": [a.to_dict() for a in self.actions],
            "out_of_band": list(self.out_of_band),
        }


def build_schedule(name: str, seed: int, workers: int = 4) -> ChaosSchedule:
    """Derive the deterministic fault schedule for a scenario."""
    if name not in SCENARIOS:
        raise ReproError(
            f"unknown chaos scenario {name!r} "
            f"(want one of: {', '.join(sorted(SCENARIOS))})"
        )
    if workers < 2:
        raise ReproError("chaos scenarios need at least 2 workers")
    rng = random.Random(f"chaos|{name}|{seed}")
    actions: List[ChaosAction] = []
    out_of_band: List[str] = []
    if name == "kill-storm":
        # Slot 0 crash-loops: the first incarnation dies mid-compute
        # (orphaning a claimed lease for takeover), and every restarted
        # incarnation dies at startup — a boot crash fires whether or
        # not any claimable cell remains, so the slot reliably burns
        # its restart budget into quarantine even if the rest of the
        # fleet finishes the grid first.  Three other first
        # incarnations die in the publish window, each orphaning a
        # settled lease.
        actions.append(
            ChaosAction(worker="w0", stage="compute", action="die", nth=0)
        )
        for incarnation in range(1, 5):
            actions.append(
                ChaosAction(
                    worker=f"w0r{incarnation}", stage="start", action="die"
                )
            )
        victims = rng.sample(range(1, workers), k=min(3, workers - 1))
        for slot in victims:
            actions.append(
                ChaosAction(
                    worker=f"w{slot}r0",
                    stage="post-publish",
                    action="kill",
                    nth=0,
                )
            )
    elif name == "heartbeat-freeze":
        # Slow every worker's first cell so the injector reliably
        # catches one alive and mid-claim; the freeze itself is
        # out-of-band (SIGSTOP cannot be self-inflicted usefully).
        actions.append(
            ChaosAction(
                worker="*",
                stage="compute",
                action="delay",
                nth=0,
                seconds=0.4,
            )
        )
        out_of_band.append("freeze-holder")
    elif name == "corruption":
        slots = rng.sample(range(workers), k=2)
        actions.append(
            ChaosAction(
                worker=f"w{slots[0]}r0", stage="publish", action="enospc",
                nth=0,
            )
        )
        actions.append(
            ChaosAction(
                worker=f"w{slots[1]}r0", stage="publish", action="torn",
                nth=1,
            )
        )
        out_of_band.extend(["corrupt-entry", "truncate-lease"])
    elif name == "straggler":
        slot = rng.randrange(workers)
        actions.append(
            ChaosAction(
                worker=f"w{slot}",
                stage="compute",
                action="delay",
                every=True,
                seconds=0.1,
            )
        )
    return ChaosSchedule(
        scenario=name,
        seed=seed,
        workers=workers,
        actions=tuple(actions),
        out_of_band=tuple(out_of_band),
    )


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos run produced, audit verdict included."""

    scenario: str
    seed: int
    workers: int
    cells: int
    wall_seconds: float
    #: First observed worker death -> grid complete (0 when nothing died).
    recovery_seconds: float
    restarts: int
    quarantined: int
    grown: int
    shrunk: int
    cells_recovered: int
    takeovers: int
    swept_leases: int
    #: action name -> times injected (in-band planned + out-of-band done).
    injections: Tuple[Tuple[str, int], ...]
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["injections"] = {k: v for k, v in self.injections}
        data["violations"] = list(self.violations)
        data["ok"] = self.ok
        return data


class _Injector(threading.Thread):
    """Applies a schedule's out-of-band faults to the live fleet."""

    def __init__(
        self,
        schedule: ChaosSchedule,
        backend: SupervisedWorkerBackend,
        cache: ResultCache,
        ttl: float,
        deadline_seconds: float = 20.0,
    ) -> None:
        super().__init__(name="chaos-injector", daemon=True)
        self._schedule = schedule
        self._backend = backend
        self._cache = cache
        self._ttl = ttl
        self._deadline = time.monotonic() + deadline_seconds
        self.performed: Dict[str, int] = {}
        self.notes: List[str] = []

    def _expired(self) -> bool:
        return time.monotonic() > self._deadline

    def _note(self, op: str, message: str) -> None:
        self.performed[op] = self.performed.get(op, 0) + 1
        self.notes.append(message)
        print(f"[chaos] injector: {message}", file=sys.stderr, flush=True)

    def _claimed_leases(self) -> Dict[str, dict]:
        """worker_id -> {key, path} for currently-claimed leases."""
        held: Dict[str, dict] = {}
        leases_dir = self._cache.leases_dir
        if not leases_dir.is_dir():
            return held
        for path in leases_dir.iterdir():
            if not path.name.endswith(".lease"):
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if data.get("status") == CLAIMED:
                held[data.get("worker_id", "")] = {
                    "key": path.name[: -len(".lease")],
                    "path": path,
                }
        return held

    def _live_holder(self):
        """A (handle, key, lease_path) triple for a live claim holder."""
        supervisor = self._backend.current_supervisor
        if supervisor is None:
            return None
        held = self._claimed_leases()
        for _, handle in supervisor.live_handles():
            worker_id = getattr(handle, "worker_id", None)
            if worker_id in held:
                return handle, held[worker_id]["key"], held[worker_id]["path"]
        return None

    def _freeze_holder(self) -> None:
        """SIGSTOP a live lease holder until its cell moves on."""
        target = None
        while target is None and not self._expired():
            target = self._live_holder()
            if target is None:
                time.sleep(0.02)
        if target is None:
            return
        handle, key, path = target
        try:
            os.kill(handle.pid, signal.SIGSTOP)
        except OSError:
            return
        self._note(
            "freeze-holder",
            f"froze pid {handle.pid} holding cell {key[:12]}…",
        )
        try:
            # Hold the freeze until the cell is published by a peer or
            # the lease visibly changed hands — i.e. the fleet routed
            # around the frozen holder.
            while not self._expired():
                if self._cache.peek(key) is not None:
                    break
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    holder = data.get("worker_id")
                except (OSError, ValueError):
                    holder = None
                if holder != getattr(handle, "worker_id", None):
                    break
                time.sleep(0.05)
        finally:
            try:
                os.kill(handle.pid, signal.SIGCONT)
                self._note(
                    "freeze-holder", f"resumed pid {handle.pid}"
                )
            except OSError:
                pass

    def _corrupt_entry(self) -> None:
        """Flip a published entry's bytes in place, early in the run."""
        while not self._expired():
            entries = [
                p
                for p in self._cache.root.glob("*/*.bin")
                if p.parent.name != "manifests"
            ]
            if entries:
                victim = sorted(entries)[0]
                try:
                    blob = victim.read_bytes()
                    victim.write_bytes(b"\x00" * 16 + blob[16:])
                except OSError:
                    return
                self._note(
                    "corrupt-entry",
                    f"corrupted published entry {victim.name[:16]}…",
                )
                return
            time.sleep(0.02)

    def _truncate_lease(self) -> None:
        """Tear a live claimed lease file mid-JSON."""
        while not self._expired():
            held = self._claimed_leases()
            if held:
                info = next(iter(held.values()))
                try:
                    info["path"].write_text('{"status": "cla', encoding="utf-8")
                except OSError:
                    return
                self._note(
                    "truncate-lease",
                    f"truncated lease for cell {info['key'][:12]}…",
                )
                return
            time.sleep(0.02)

    def run(self) -> None:
        ops: Dict[str, Callable[[], None]] = {
            "freeze-holder": self._freeze_holder,
            "corrupt-entry": self._corrupt_entry,
            "truncate-lease": self._truncate_lease,
        }
        for op in self._schedule.out_of_band:
            try:
                ops[op]()
            except Exception as exc:  # noqa: BLE001 — an injector bug
                # must surface as an audit failure, not a hung run.
                self.notes.append(f"injector {op} failed: {exc}")


def _scenario_expectations(
    schedule: ChaosSchedule,
    audit: ChaosAudit,
    stats,
    worker_totals: Dict[str, int],
    injector_performed: Dict[str, int],
) -> List[str]:
    """Scenario-specific assertions (a chaos run where nothing
    happened is a failed test of the harness, not a pass)."""
    problems: List[str] = []
    name = schedule.scenario
    if name == "kill-storm":
        if stats.restarts < 3:
            problems.append(
                f"kill-storm: expected >=3 supervisor restarts, "
                f"got {stats.restarts}"
            )
        if stats.quarantined < 1:
            problems.append(
                "kill-storm: the persistent crasher was never quarantined"
            )
        if audit.counter("cells_recovered") < 1:
            problems.append(
                "kill-storm: no cell was recorded as lost-then-recovered"
            )
    elif name == "heartbeat-freeze":
        if injector_performed.get("freeze-holder", 0) < 1:
            problems.append(
                "heartbeat-freeze: the injector never froze a holder"
            )
        if audit.counter("takeovers") + worker_totals.get("stolen", 0) < 1:
            problems.append(
                "heartbeat-freeze: the frozen holder's lease was never "
                "taken over"
            )
    elif name == "corruption":
        for op in ("corrupt-entry", "truncate-lease"):
            if injector_performed.get(op, 0) < 1:
                problems.append(f"corruption: injector never performed {op}")
    elif name == "straggler":
        if stats.restarts or stats.quarantined:
            problems.append(
                "straggler: the control scenario triggered recovery "
                f"actions (restarts={stats.restarts}, "
                f"quarantined={stats.quarantined})"
            )
    return problems


def run_scenario(
    name: str,
    seed: int = 2010,
    workers: int = 4,
    work_dir: Optional[Path] = None,
    registry=None,
) -> ChaosReport:
    """Run one seeded chaos scenario end to end and audit it.

    Args:
        name: a :data:`SCENARIOS` key.
        seed: derives the whole fault schedule (and the grid's cell
            seeds) — same seed, same chaos.
        workers: fleet ceiling (min stays at 1; the supervisor flexes).
        work_dir: scratch directory (a fresh temp dir by default,
            removed on success and kept for inspection on violations).
        registry: optional
            :class:`~repro.telemetry.registry.MetricsRegistry` —
            receives ``repro_chaos_injections_total`` /
            ``repro_chaos_violations`` on top of the fabric gauges the
            coordinator already publishes.
    """
    schedule = build_schedule(name, seed=seed, workers=workers)
    tasks = build_grid("smoke", seed=seed)

    # Ground truth: the serial run the chaos run must equal, bit for bit.
    serial = run_grid_parallel(tasks, n_workers=1)
    serial_digests = grid_digests(serial)

    owns_dir = work_dir is None
    if owns_dir:
        work_dir = Path(tempfile.mkdtemp(prefix=f"repro-chaos-{name}-"))
    work_dir = Path(work_dir)
    cache = ResultCache(work_dir / "cache")
    plan_path = ChaosPlan.dump(schedule.actions, work_dir / "chaos-plan.json")

    backend = SupervisedWorkerBackend(
        min_workers=1,
        max_workers=workers,
        poll_interval=0.05,
        config=CHAOS_SUPERVISOR_CONFIG,
    )
    injector = _Injector(schedule, backend, cache, ttl=CHAOS_LEASE_TTL)

    saved = {
        var: os.environ.get(var) for var in (CHAOS_PLAN_ENV, CELL_FLOOR_ENV)
    }
    os.environ[CHAOS_PLAN_ENV] = str(plan_path)
    os.environ[CELL_FLOOR_ENV] = str(CHAOS_CELL_FLOOR)
    start = time.perf_counter()
    try:
        injector.start()
        report = run_grid_fabric(
            tasks,
            backend,
            cache,
            registry=registry,
            lease_ttl=CHAOS_LEASE_TTL,
            poll_interval=0.05,
            run_id=f"chaos-{name}-{seed}",
        )
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
    wall = time.perf_counter() - start
    injector.join(timeout=5.0)

    stats = backend.last_supervisor_stats
    worker_totals = dict(report.worker_totals)
    audit = audit_run(
        report,
        tasks,
        cache,
        serial_digests=serial_digests,
        swept_leases=backend.last_swept_leases,
    )
    violations = list(audit.violations)
    violations.extend(
        _scenario_expectations(
            schedule, audit, stats, worker_totals, injector.performed
        )
    )

    injections: Dict[str, int] = {}
    for action in schedule.actions:
        injections[action.action] = injections.get(action.action, 0) + 1
    for op, count in injector.performed.items():
        injections[op] = injections.get(op, 0) + count

    if registry is not None:
        counter = registry.counter(
            "repro_chaos_injections_total",
            "Faults injected by the chaos harness",
            ("scenario", "action"),
        )
        for action_name in sorted(injections):
            counter.labels(scenario=name, action=action_name).inc(
                injections[action_name]
            )
        registry.gauge(
            "repro_chaos_violations",
            "Invariant violations found by the last chaos audit",
            ("scenario",),
        ).labels(scenario=name).set(len(violations))

    chaos_report = ChaosReport(
        scenario=name,
        seed=seed,
        workers=workers,
        cells=len(tasks),
        wall_seconds=round(wall, 6),
        recovery_seconds=round(stats.recovery_seconds(), 6),
        restarts=stats.restarts,
        quarantined=stats.quarantined,
        grown=stats.grown,
        shrunk=stats.shrunk,
        cells_recovered=audit.counter("cells_recovered"),
        takeovers=audit.counter("takeovers"),
        swept_leases=backend.last_swept_leases,
        injections=tuple(sorted(injections.items())),
        violations=tuple(violations),
    )
    if owns_dir and chaos_report.ok:
        import shutil

        shutil.rmtree(work_dir, ignore_errors=True)
    elif not chaos_report.ok:
        print(
            f"[chaos] scenario {name} left its evidence in {work_dir}",
            file=sys.stderr,
        )
    return chaos_report
