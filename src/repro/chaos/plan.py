"""In-band fault plans: what a worker does to itself, and when.

A :class:`ChaosPlan` is a JSON file of :class:`ChaosAction` entries,
armed through the ``REPRO_CHAOS_PLAN`` environment variable and loaded
by each fabric worker at startup (:mod:`repro.fabric.worker`).  The
worker calls the plan's hooks at the three instants that matter to the
lease protocol, and a matching action fires right there:

========== ============== ==================================================
stage       action         effect inside the worker process
========== ============== ==================================================
start       ``die``        SIGKILL itself at process startup, before any
                           claim (the crash-loop a broken binary or bad
                           host produces — drives supervisor quarantine
                           independently of what work is left)
compute     ``die``        SIGKILL itself before simulating the cell
compute     ``delay``      sleep ``seconds`` before simulating (straggler /
                           heartbeat freeze while holding the lease)
publish     ``enospc``     raise ``OSError(ENOSPC)`` in place of the cache
                           write (disk-full on publish)
publish     ``torn``       scribble garbage *non-atomically* over the cache
                           entry path, then SIGKILL itself (the torn write
                           the cache's atomic protocol normally forbids)
post-publish ``kill``      SIGKILL itself between ``cache.put`` and
                           ``release_done`` (the crash-mid-publish window)
========== ============== ==================================================

Selectors: ``worker`` is matched against the worker id's slot suffix
(``w2`` matches slot 2 in every incarnation, ``w2r1`` exactly one
incarnation, ``*`` everyone); ``nth`` picks the worker's n-th computed
cell (per process — a restarted incarnation reloads the plan and
counts from zero); ``every`` repeats the action on all matching cells
instead of consuming it.

Everything is data, so a seeded scenario builds the same plan every
time and a replayed run injects the same faults at the same points.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import re
import signal
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..errors import ReproError

__all__ = [
    "CHAOS_PLAN_ENV",
    "COMPUTE",
    "POST_PUBLISH",
    "PUBLISH",
    "START",
    "ChaosAction",
    "ChaosPlan",
    "ChaosPlanError",
    "worker_suffix",
]

#: Environment variable pointing workers at a serialized plan.
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Hook stages, in cell-lifecycle order.
START = "start"
COMPUTE = "compute"
PUBLISH = "publish"
POST_PUBLISH = "post-publish"

_STAGES = (START, COMPUTE, PUBLISH, POST_PUBLISH)
_ACTIONS_BY_STAGE = {
    START: ("die",),
    COMPUTE: ("die", "delay"),
    PUBLISH: ("enospc", "torn"),
    POST_PUBLISH: ("kill",),
}
_INCARNATION_RE = re.compile(r"r\d+$")


class ChaosPlanError(ReproError):
    """A fault plan was malformed."""


def worker_suffix(worker_id: str) -> str:
    """The slot suffix of a fabric worker id (``run-123-w2r1`` → ``w2r1``)."""
    return worker_id.rsplit("-", 1)[-1]


def _selector_matches(selector: str, suffix: str) -> bool:
    if selector == "*" or selector == suffix:
        return True
    # "w2" matches every incarnation of slot 2 ("w2", "w2r1", ...)
    # but not slot 21.
    if suffix.startswith(selector):
        rest = suffix[len(selector):]
        return bool(_INCARNATION_RE.fullmatch(rest))
    return False


@dataclasses.dataclass(frozen=True)
class ChaosAction:
    """One planned fault.

    Attributes:
        worker: slot selector (``w0``, ``w0r2``, or ``*``).
        stage: which hook fires it (:data:`COMPUTE`, :data:`PUBLISH`,
            :data:`POST_PUBLISH`).
        action: what happens (see the table in the module docstring).
        nth: the matching worker's n-th computed cell (0-based,
            per-process ordinal), ignored when ``every`` is set.
        every: fire on every matching cell instead of once.
        seconds: sleep length for ``delay``.
    """

    worker: str
    stage: str
    action: str
    nth: int = 0
    every: bool = False
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.stage not in _STAGES:
            raise ChaosPlanError(
                f"unknown chaos stage {self.stage!r} (want one of {_STAGES})"
            )
        if self.action not in _ACTIONS_BY_STAGE[self.stage]:
            raise ChaosPlanError(
                f"action {self.action!r} is not valid at stage "
                f"{self.stage!r} (want one of "
                f"{_ACTIONS_BY_STAGE[self.stage]})"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosAction":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ChaosPlanError(
                f"unknown chaos action field(s): {sorted(unknown)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ChaosPlanError(f"bad chaos action {data!r}: {exc}") from exc


class ChaosPlan:
    """The actions armed for one worker process.

    Built either directly (tests) or via :meth:`load` from the file
    named by :data:`CHAOS_PLAN_ENV`.  Hooks are cheap no-ops when no
    action matches, so arming a plan perturbs timing only where it
    injects.
    """

    def __init__(
        self,
        actions: Sequence[ChaosAction],
        worker_id: str,
        sleep=time.sleep,
    ) -> None:
        suffix = worker_suffix(worker_id)
        self.worker_id = worker_id
        self._sleep = sleep
        self._pending: List[ChaosAction] = [
            a for a in actions if _selector_matches(a.worker, suffix)
        ]
        self.fired: List[ChaosAction] = []

    # -- construction --------------------------------------------------

    @staticmethod
    def dump(actions: Sequence[ChaosAction], path: Union[str, Path]) -> Path:
        """Serialize a plan for :data:`CHAOS_PLAN_ENV` consumption."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"actions": [a.to_dict() for a in actions]}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path], worker_id: str) -> "ChaosPlan":
        """Load the plan file and keep the actions aimed at ``worker_id``."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ChaosPlanError(f"cannot read chaos plan {path}: {exc}") from exc
        except ValueError as exc:
            raise ChaosPlanError(f"chaos plan {path} is not JSON: {exc}") from exc
        raw = data.get("actions") if isinstance(data, dict) else None
        if not isinstance(raw, list):
            raise ChaosPlanError(
                f"chaos plan {path} must be {{\"actions\": [...]}}"
            )
        return cls([ChaosAction.from_dict(a) for a in raw], worker_id=worker_id)

    # -- hook plumbing -------------------------------------------------

    def _take(self, stage: str, ordinal: int) -> Optional[ChaosAction]:
        for action in self._pending:
            if action.stage != stage:
                continue
            if not action.every and action.nth != ordinal:
                continue
            if not action.every:
                self._pending.remove(action)
            self.fired.append(action)
            return action
        return None

    def _log(self, action: ChaosAction, key: str) -> None:
        print(
            f"[chaos] {self.worker_id}: {action.action} at {action.stage} "
            f"(cell {key[:12]}…)",
            file=sys.stderr,
            flush=True,
        )

    def _die(self) -> None:
        # SIGKILL ourselves: no cleanup, no atexit, no flushing beyond
        # what already hit the OS — exactly what a reclaimed host or an
        # OOM kill looks like to the rest of the fleet.
        os.kill(os.getpid(), signal.SIGKILL)

    # -- worker-facing hooks -------------------------------------------

    def on_start(self) -> None:
        """At process startup, before the worker claims anything."""
        action = self._take(START, 0)
        if action is None:
            return
        self._log(action, "(startup)")
        if action.action == "die":
            self._die()

    def on_compute(self, key: str, ordinal: int) -> None:
        """Before the cell is simulated (lease held, nothing published)."""
        action = self._take(COMPUTE, ordinal)
        if action is None:
            return
        self._log(action, key)
        if action.action == "die":
            self._die()
        elif action.action == "delay":
            self._sleep(action.seconds)

    def on_publish(self, cache, key: str, ordinal: int) -> None:
        """In place of the cache write (result computed, not yet durable)."""
        action = self._take(PUBLISH, ordinal)
        if action is None:
            return
        self._log(action, key)
        if action.action == "enospc":
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        if action.action == "torn":
            # The torn write the cache's tmp-then-rename protocol is
            # designed to make impossible: bypass it, leave half a
            # record at the real path, and die before anyone can be
            # told.  peek() must reject this as a digest mismatch.
            target = cache.path_for(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            with open(target, "wb") as fh:
                fh.write(b"RPC1torn-entry-from-chaos")
            self._die()

    def on_post_publish(self, key: str, ordinal: int) -> None:
        """Between ``cache.put`` and ``release_done`` (the orphan window)."""
        action = self._take(POST_PUBLISH, ordinal)
        if action is None:
            return
        self._log(action, key)
        if action.action == "kill":
            self._die()
