"""The chaos invariant checker: what must survive any fault schedule.

The fabric's safety argument is short — cells are deterministic and
published atomically, so any race resolves to the same bytes — but an
argument is not an audit.  :func:`audit_run` re-derives every claim
from the on-disk evidence a run leaves behind:

1. **completeness** — the report covers every cell and carries no
   failures;
2. **bit-identical digests** — each cell's summary hashes to exactly
   the serial run's value, in grid order (not merely "a" result: *the*
   result);
3. **durable publications** — ``cache.peek`` (which verifies the
   sha256 envelope without touching hit/miss stats) accepts every
   cell's entry, so no torn or corrupted bytes survived;
4. **journal consistency** — every lease file parses, none is left
   ``claimed`` (a claim outliving the run is an orphan: its holder is
   gone and nobody reconciled it), and every ``done`` marker points at
   a published entry;
5. **no droppings** — no abandoned atomic-write tmp files outside the
   manifests scratch area.

The audit also *counts* the recovery story: done-marker takeover
counts plus swept settled leases become ``cells_recovered`` — cells
that were lost mid-flight and completed anyway — which is the number
``BENCH_chaos.json`` tracks per scenario.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.cache import ResultCache, stable_hash
from ..experiments.parallel import CellTask, GridReport
from ..fabric.lease import CLAIMED, DONE

__all__ = ["ChaosAudit", "audit_run", "grid_digests"]


def grid_digests(report: GridReport) -> List[Optional[str]]:
    """Stable per-cell digests of a grid report, in grid order."""
    return [
        stable_hash(o.summary) if o is not None else None
        for o in report.outcomes
    ]


@dataclasses.dataclass(frozen=True)
class ChaosAudit:
    """The verdict on one audited run."""

    cells: int
    violations: Tuple[str, ...]
    #: Evidence counters: done_markers, takeovers, cells_recovered,
    #: swept_leases, claimed_leases, torn_leases, tmp_droppings.
    counters: Tuple[Tuple[str, int], ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counter(self, name: str) -> int:
        return dict(self.counters).get(name, 0)

    def to_dict(self) -> dict:
        return {
            "cells": self.cells,
            "ok": self.ok,
            "violations": list(self.violations),
            "counters": {k: v for k, v in self.counters},
        }


def audit_run(
    report: GridReport,
    tasks: Sequence[CellTask],
    cache: ResultCache,
    serial_digests: Optional[Sequence[Optional[str]]] = None,
    swept_leases: int = 0,
) -> ChaosAudit:
    """Audit a fabric run against the chaos invariants.

    Args:
        report: the coordinator's report for the chaos run.
        tasks: the grid it was asked to compute.
        cache: the cache directory the fleet coordinated through.
        serial_digests: :func:`grid_digests` of a clean serial run of
            the same grid — the bit-identical ground truth.  ``None``
            skips the digest comparison (unit tests that only care
            about journal hygiene).
        swept_leases: settled orphan leases the backend reconciled
            after the run (``SupervisedWorkerBackend.last_swept_leases``)
            — each one was a cell lost mid-publish and recovered.
    """
    violations: List[str] = []
    keys = [t.cache_key for t in tasks if t.cache_key]

    # 1. completeness
    missing = [i for i, o in enumerate(report.outcomes) if o is None]
    if missing:
        violations.append(
            f"report is missing outcomes for cell index(es) {missing[:8]}"
        )
    if report.failures:
        violations.append(
            f"report carries {len(report.failures)} cell failure(s)"
        )

    # 2. bit-identical to serial
    if serial_digests is not None:
        got = grid_digests(report)
        if list(got) != list(serial_digests):
            diverged = [
                i
                for i, (a, b) in enumerate(zip(got, serial_digests))
                if a != b
            ]
            violations.append(
                f"digests diverge from the serial run at cell "
                f"index(es) {diverged[:8]}"
            )

    # 3. durable publications
    unpublished = [k for k in keys if cache.peek(k) is None]
    if unpublished:
        violations.append(
            f"{len(unpublished)} cell(s) have no valid cache entry "
            f"(first: {unpublished[0][:12]}…)"
        )

    # 4. journal consistency
    done_markers = 0
    takeovers = 0
    recovered_markers = 0
    claimed = 0
    torn = 0
    key_set = set(keys)
    leases_dir = cache.leases_dir
    if leases_dir.is_dir():
        for path in sorted(leases_dir.iterdir()):
            if not path.is_file() or not path.name.endswith(".lease"):
                continue
            key = path.name[: -len(".lease")]
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                status = data.get("status")
            except (OSError, ValueError):
                torn += 1
                violations.append(f"unparsable lease file {path.name}")
                continue
            if status == CLAIMED:
                claimed += 1
                violations.append(
                    f"orphan claimed lease survived the run: {path.name} "
                    f"(holder {data.get('worker_id')})"
                )
            elif status == DONE:
                done_markers += 1
                cell_takeovers = int(data.get("takeovers", 0) or 0)
                takeovers += cell_takeovers
                if cell_takeovers > 0:
                    recovered_markers += 1
                if key in key_set and cache.peek(key) is None:
                    violations.append(
                        f"done marker {path.name} journals an "
                        "unpublished cell"
                    )
            else:
                violations.append(
                    f"lease {path.name} has unknown status {status!r}"
                )

    # 5. no droppings
    droppings = [
        p
        for p in cache.root.glob("*/*.tmp.*")
        if p.parent.name != "manifests"
    ]
    if droppings:
        violations.append(
            f"{len(droppings)} abandoned tmp file(s), first: "
            f"{droppings[0].relative_to(cache.root)}"
        )

    counters: Dict[str, int] = {
        "done_markers": done_markers,
        "takeovers": takeovers,
        "cells_recovered": recovered_markers + int(swept_leases),
        "swept_leases": int(swept_leases),
        "claimed_leases": claimed,
        "torn_leases": torn,
        "tmp_droppings": len(droppings),
    }
    return ChaosAudit(
        cells=len(tasks),
        violations=tuple(violations),
        counters=tuple(sorted(counters.items())),
    )
