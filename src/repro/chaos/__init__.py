"""Deterministic chaos engineering for the distributed fabric.

The paper's platform loses machines whenever an owner reclaims one;
this package attacks our own fabric the same way, on purpose and from
a seed.  :mod:`.plan` is the in-band fault vocabulary workers execute
against themselves, :mod:`.harness` turns named scenarios into seeded
schedules and runs them against a live supervised fleet, and
:mod:`.invariants` audits what is left on disk afterwards.

Entry points: ``repro chaos run --scenario kill-storm --seed 2010``
on the command line, :func:`run_scenario` from code.
"""

from .harness import (
    SCENARIOS,
    ChaosReport,
    ChaosSchedule,
    build_schedule,
    run_scenario,
)
from .invariants import ChaosAudit, audit_run, grid_digests
from .plan import CHAOS_PLAN_ENV, ChaosAction, ChaosPlan, ChaosPlanError

__all__ = [
    "CHAOS_PLAN_ENV",
    "ChaosAction",
    "ChaosAudit",
    "ChaosPlan",
    "ChaosPlanError",
    "ChaosReport",
    "ChaosSchedule",
    "SCENARIOS",
    "audit_run",
    "build_schedule",
    "grid_digests",
    "run_scenario",
]
