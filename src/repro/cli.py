"""Command-line interface.

Usage (installed as ``repro``, or ``python -m repro``)::

    repro table 1                 # reproduce paper Table 1
    repro table all               # all five tables + high-suspension
    repro figure 2                # reproduce paper Figure 2
    repro policies list           # registered policies and selectors
    repro run --policy ResSusUtil --scenario high-load --scale 0.1
    repro run --policy dfrs:share=0.5,floor=0.1 --scenario high-suspension
    repro run --policy "migration_cost:transfer_minutes=5" --scenario high-load
    repro run --scenario smoke --telemetry-dir out/telemetry --profile
    repro run --policy ResSusUtil --machine-mtbf 4000 --machine-mttr 120
    repro table 2 --policy NoRes --policy dfrs:share=0.5   # custom strategy set
    repro faults --mtbf 2000 --mtbf 8000    # churn sweep per policy
    repro run-grid --preset fault-sweep --backend subprocess:4 --cache-dir /shared/cache
    repro run-grid --preset smoke --policy NoRes --policy dfrs:share=0.5
    repro run-grid --preset fault-sweep --shard-id 0 --num-shards 4   # static shard
    repro cache stats ~/.cache/repro
    repro cache gc ~/.cache/repro --max-bytes 512M --max-age 7d
    repro stats out/telemetry     # render the telemetry snapshot
    repro generate-trace out.jsonl --scenario busy-week --scale 0.1
    repro analyze-trace out.jsonl
    repro make-fixture fixture.swf --jobs 100000 --seed 1
    repro ingest fixture.swf --rss-ceiling-mb 512 --json
    repro run --trace fixture.swf --policy ResSusUtil
    repro table all --workers 4 --cache-dir ~/.cache/repro --progress

Real-trace ingestion (``make-fixture`` / ``ingest`` / ``run --trace``)
streams SWF or Google cluster-trace logs through the engine in constant
memory; see ``docs/traces.md``.

``--policy`` flags take registry spec strings — ``name`` or
``name:key=value,...`` (``repro policies list`` shows what is
registered; grammar and plugin guide in ``docs/policies.md``).

All experiment commands honour ``--scale`` and ``--seed`` (and the
``REPRO_SCALE`` / ``REPRO_SEED`` environment variables).  The ``table``
and ``figure`` commands additionally honour ``--workers`` (process-pool
fan-out; results are bit-identical to serial runs), ``--cache-dir``
(content-addressed on-disk result cache; defaults to
``REPRO_CACHE_DIR``), ``--no-cache``, ``--progress`` (per-cell
heartbeat on stderr) and ``--telemetry-dir`` (per-cell execution
telemetry as ``cells.jsonl``); see ``docs/performance.md`` and
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from .errors import ReproError
from .experiments import figures, tables
from .metrics.report import render_table, render_waste_components
from .metrics.summary import summarize
from .policies import policy_from_spec
from .schedulers.initial import INITIAL_SCHEDULER_NAMES, initial_scheduler_from_name
from .simulator.config import SimulationConfig
from .simulator.simulation import run_simulation
from .workload import io as workload_io
from .workload.scenarios import busy_week, high_load, high_suspension, smoke, year

__all__ = ["main", "build_parser"]

_SCENARIOS: Dict[str, Callable] = {
    "busy-week": busy_week,
    "high-load": high_load,
    "high-suspension": high_suspension,
    "year": year,
    "smoke": lambda scale=None, seed=7: smoke(seed),
}

_TABLES = {
    "1": (tables.table1, "Table 1: suspended-job rescheduling, normal load, RR initial"),
    "2": (tables.table2, "Table 2: suspended-job rescheduling, high load, RR initial"),
    "3": (tables.table3, "Table 3: suspended-job rescheduling, high load, util initial"),
    "4": (tables.table4, "Table 4: +waiting-job rescheduling, high load, RR initial"),
    "5": (tables.table5, "Table 5: +waiting-job rescheduling, high load, util initial"),
    "high-suspension": (
        tables.high_suspension_experiment,
        "High-suspension scenario (Section 3.2.1, in text)",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Feasibility of Dynamic Rescheduling on "
            "the Intel Distributed Computing Platform' (Middleware 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="reproduce one of the paper's tables")
    table.add_argument("which", choices=list(_TABLES) + ["all"])
    _add_scale_seed(table)
    _add_execution_opts(table)
    _add_policy_override(table)

    figure = sub.add_parser("figure", help="reproduce one of the paper's figures")
    figure.add_argument("which", choices=["2", "3", "4"])
    _add_scale_seed(figure)
    _add_execution_opts(figure)
    figure.add_argument(
        "--horizon", type=float, default=None, help="horizon minutes (figures 2/4)"
    )
    figure.add_argument(
        "--svg", default=None, metavar="PATH", help="also render the figure as SVG"
    )

    run = sub.add_parser("run", help="run one simulation and print its summary")
    run.add_argument("--scenario", choices=list(_SCENARIOS), default="busy-week")
    run.add_argument(
        "--policy", default="NoRes", metavar="SPEC",
        help="policy spec: NAME or NAME:key=value,... "
        "(see 'repro policies list'; default: NoRes)",
    )
    run.add_argument(
        "--initial-scheduler",
        choices=list(INITIAL_SCHEDULER_NAMES),
        default="round-robin",
    )
    run.add_argument("--wait-threshold", type=float, default=30.0)
    run.add_argument(
        "--machine-mtbf", type=float, default=None, metavar="MIN",
        help="inject machine churn with this mean time between failures (minutes)",
    )
    run.add_argument(
        "--machine-mttr", type=float, default=120.0, metavar="MIN",
        help="mean machine repair time for --machine-mtbf (minutes, default 120)",
    )
    run.add_argument(
        "--job-failure-prob", type=float, default=0.0, metavar="P",
        help="per-execution-segment transient job failure probability",
    )
    run.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="execution attempts before a transiently failing job gives up",
    )
    run.add_argument(
        "--events", default=None, metavar="PATH",
        help="write the simulation's event log to this JSONL file",
    )
    run.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="collect engine metrics and export them into DIR "
        "(metrics.prom + metrics.jsonl; render with 'repro stats DIR')",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="time each engine event handler and print the profile",
    )
    run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay a real trace file instead of a synthetic scenario "
        "(streaming, constant memory; see docs/traces.md)",
    )
    run.add_argument(
        "--trace-format", choices=["swf", "google"], default="swf",
        help="format of --trace (default: swf)",
    )
    _add_scale_seed(run)

    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: rescheduling policies under machine churn",
    )
    faults.add_argument(
        "--mtbf", type=float, action="append", default=None, metavar="MIN",
        help="machine MTBF in minutes (repeatable; default: REPRO_FAULT_MTBFS preset)",
    )
    faults.add_argument(
        "--mttr", type=float, default=None, metavar="MIN",
        help="mean machine repair time in minutes (default: REPRO_FAULT_MTTR preset)",
    )
    faults.add_argument(
        "--job-failure-prob", type=float, default=0.0, metavar="P",
        help="per-execution-segment transient job failure probability",
    )
    _add_scale_seed(faults)

    run_grid = sub.add_parser(
        "run-grid",
        help="run a named experiment grid on an execution backend "
        "(cache-coordinated workers; see docs/distributed.md)",
    )
    run_grid.add_argument(
        "--preset",
        choices=["fault-sweep", "smoke", "table1"],
        default="fault-sweep",
        help="which grid to run (default: fault-sweep)",
    )
    run_grid.add_argument(
        "--backend",
        default="local",
        metavar="SPEC",
        help="execution backend: local[:N], subprocess[:N] or "
        "ssh:host1,host2 (default: local)",
    )
    run_grid.add_argument(
        "--shard-id", type=int, default=None, metavar="K",
        help="compute only static shard K of --num-shards (cells with "
        "index %% num_shards == K); the coordination-free fallback for "
        "fleets without a shared cache directory",
    )
    run_grid.add_argument(
        "--num-shards", type=int, default=None, metavar="N",
        help="total static shards (requires --shard-id)",
    )
    run_grid.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="SEC",
        help="heartbeat age after which a dead worker's cell is taken "
        "over (default 60)",
    )
    run_grid.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="grid checkpoint file; an interrupted run resumes from it",
    )
    run_grid.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="shared result cache directory — the fabric's coordination "
        "medium (default: REPRO_CACHE_DIR)",
    )
    run_grid.add_argument(
        "--no-cache", action="store_true",
        help="bypass the cache; only the local backend (serial/pool) "
        "can run cache-less",
    )
    run_grid.add_argument(
        "--progress", action="store_true",
        help="print a per-cell heartbeat (done/total, ETA, provenance) to stderr",
    )
    run_grid.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="write cells.jsonl and fabric gauges (repro_fabric_cells) into DIR",
    )
    run_grid.add_argument(
        "--supervise", action="store_true",
        help="run the fleet under the self-healing supervisor (crash "
        "restarts with backoff, quarantine, elastic sizing); overrides "
        "--backend (see docs/robustness.md)",
    )
    run_grid.add_argument(
        "--min-workers", type=int, default=1, metavar="N",
        help="--supervise: never shrink the fleet below N workers (default 1)",
    )
    run_grid.add_argument(
        "--max-workers", type=int, default=4, metavar="N",
        help="--supervise: never grow the fleet above N workers (default 4)",
    )
    _add_scale_seed(run_grid)
    _add_policy_override(run_grid)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection scenario against a live "
        "supervised fleet and audit the invariants "
        "(see docs/robustness.md)",
    )
    chaos_cmd.add_argument(
        "action", choices=["run", "list"],
        help="'run' one scenario end to end, or 'list' the catalogue",
    )
    chaos_cmd.add_argument(
        "--scenario", default="kill-storm", metavar="NAME",
        help="scenario to run (see 'repro chaos list'; default: kill-storm)",
    )
    chaos_cmd.add_argument(
        "--seed", type=int, default=2010, metavar="N",
        help="deterministic schedule seed (default 2010)",
    )
    chaos_cmd.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="fleet size ceiling during the scenario (default 4)",
    )
    chaos_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full report as JSON instead of a summary",
    )

    policies_cmd = sub.add_parser(
        "policies", help="inspect the policy plugin registry"
    )
    policies_cmd.add_argument(
        "action", choices=["list"], nargs="?", default="list",
        help="what to do (default: list)",
    )

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect or garbage-collect a result cache directory",
    )
    cache_cmd.add_argument("action", choices=["stats", "gc"])
    cache_cmd.add_argument(
        "directory", nargs="?", default=None,
        help="cache directory (default: REPRO_CACHE_DIR)",
    )
    cache_cmd.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="gc: evict oldest entries until the cache fits SIZE "
        "(accepts 512M, 2G, plain bytes)",
    )
    cache_cmd.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="gc: evict entries older than AGE (accepts 90m, 36h, 7d, "
        "plain seconds)",
    )
    cache_cmd.add_argument(
        "--dry-run", action="store_true",
        help="gc: report what would be evicted without deleting anything",
    )

    stats = sub.add_parser(
        "stats", help="render a telemetry directory written by --telemetry-dir"
    )
    stats.add_argument(
        "directory",
        help="directory holding metrics.jsonl / metrics.prom / cells.jsonl",
    )

    gen = sub.add_parser("generate-trace", help="write a scenario's trace to JSONL")
    gen.add_argument("output", help="output path (.jsonl)")
    gen.add_argument("--scenario", choices=list(_SCENARIOS), default="busy-week")
    _add_scale_seed(gen)

    analyze = sub.add_parser("analyze-trace", help="print statistics of a JSONL trace")
    analyze.add_argument("input", help="trace path (.jsonl)")

    validate = sub.add_parser(
        "validate", help="run the experiments and check the paper's claims"
    )
    _add_scale_seed(validate)
    validate.add_argument(
        "--year-horizon", type=float, default=None, help="horizon for figures 2/4"
    )

    export = sub.add_parser(
        "export", help="run one simulation and export its outputs as CSV"
    )
    export.add_argument("outdir", help="directory to write CSV files into")
    export.add_argument("--scenario", choices=list(_SCENARIOS), default="busy-week")
    export.add_argument(
        "--policy", default="NoRes", metavar="SPEC",
        help="policy spec (see 'repro policies list'; default: NoRes)",
    )
    _add_scale_seed(export)

    ingest = sub.add_parser(
        "ingest",
        help="stream a real trace (SWF / Google cluster) through the "
        "simulator in constant memory and report the run",
    )
    ingest.add_argument("trace", help="trace file path")
    ingest.add_argument(
        "--format", choices=["swf", "google"], default="swf", dest="trace_format",
        help="trace format (default: swf)",
    )
    ingest.add_argument(
        "--policy", default="NoRes", metavar="SPEC",
        help="policy spec (see 'repro policies list'; default: NoRes)",
    )
    ingest.add_argument(
        "--window", nargs=2, type=float, default=None, metavar=("START", "END"),
        help="replay only jobs submitted in [START, END) minutes of the "
        "source clock",
    )
    ingest.add_argument(
        "--stride", type=int, default=1, metavar="N",
        help="keep every N-th eligible job (deterministic scale-down)",
    )
    ingest.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="stop after replaying N jobs",
    )
    ingest.add_argument(
        "--unrestricted", action="store_true",
        help="skip the business-group ownership mapping (jobs may run anywhere)",
    )
    ingest.add_argument(
        "--rss-ceiling-mb", type=float, default=None, metavar="MB",
        help="fail (exit 1) if this process's peak RSS exceeds MB — the "
        "constant-memory gate CI runs",
    )
    ingest.add_argument(
        "--json", action="store_true",
        help="emit a single machine-readable JSON object instead of tables",
    )
    _add_scale_seed(ingest)

    fixture = sub.add_parser(
        "make-fixture",
        help="write a deterministic synthetic SWF / Google-CSV fixture "
        "(format-faithful, no downloads needed)",
    )
    fixture.add_argument("output", help="output path")
    fixture.add_argument(
        "--format", choices=["swf", "google"], default="swf", dest="trace_format",
        help="fixture format (default: swf)",
    )
    fixture.add_argument("--jobs", type=int, default=100_000, metavar="N")
    fixture.add_argument(
        "--utilization", type=float, default=0.35,
        help="offered load vs the --scale cluster (default 0.35)",
    )
    fixture.add_argument(
        "--mean-runtime", type=float, default=150.0, metavar="MIN",
        help="mean job runtime in minutes (default 150)",
    )
    _add_scale_seed(fixture)
    return parser


def _add_scale_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=None, help="cluster scale factor")
    parser.add_argument("--seed", type=int, default=None, help="workload seed")


def _add_policy_override(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy", action="append", default=None, metavar="SPEC",
        help="replace the default strategy set with this policy spec "
        "(repeatable; see 'repro policies list')",
    )


def _add_execution_opts(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the experiment grid (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="on-disk result cache directory (default: REPRO_CACHE_DIR; unset = off)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache even when a cache directory is configured",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a per-cell heartbeat (done/total, ETA, cache hits) to stderr",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="write per-cell execution telemetry (cells.jsonl) into DIR",
    )


#: Best-effort telemetry flushers run when the user hits Ctrl-C, so an
#: interrupted sweep still leaves its partial cells.jsonl / metrics on
#: disk.  Commands register a closure here and clear it on normal exit.
_INTERRUPT_FLUSHERS: List[Callable[[], None]] = []


class _CellFeed:
    """Per-cell callback for the experiment backend.

    Collects every completed cell (for ``cells.jsonl``) and forwards to
    an optional :class:`~repro.telemetry.ProgressReporter` heartbeat.
    """

    def __init__(self, reporter=None) -> None:
        self.cells: list = []
        self._reporter = reporter

    def add_total(self, count: int) -> None:
        if self._reporter is not None:
            self._reporter.add_total(count)

    def __call__(self, outcome) -> None:
        self.cells.append(outcome)
        if self._reporter is not None:
            self._reporter(outcome)


def _make_cell_feed(args: argparse.Namespace) -> Optional[_CellFeed]:
    """A :class:`_CellFeed` when --progress / --telemetry-dir ask for one."""
    if not (args.progress or args.telemetry_dir):
        return None
    reporter = None
    if args.progress:
        from .telemetry import ProgressReporter

        reporter = ProgressReporter()
    feed = _CellFeed(reporter)
    if args.telemetry_dir:
        _INTERRUPT_FLUSHERS.append(lambda: _write_cell_telemetry(feed, args))
    return feed


def _write_cell_telemetry(feed: Optional[_CellFeed], args: argparse.Namespace) -> None:
    if feed is None or not args.telemetry_dir:
        return
    from .telemetry import write_cells_jsonl

    path = write_cells_jsonl(feed.cells, args.telemetry_dir)
    print(f"wrote {len(feed.cells)} cell records to {path}")


def _execution_kwargs(
    args: argparse.Namespace, progress: Optional[Callable] = None
) -> dict:
    """The workers/cache kwargs every experiment entry point accepts."""
    return {
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "use_cache": False if args.no_cache else None,
        "progress": progress,
    }


_PROVENANCE_SOURCES = {
    "computed": "simulated",
    "cache_hit": "cache",
    "checkpoint": "checkpoint",
    "claimed_elsewhere": "elsewhere",
}


def _print_cell_stats(cells) -> None:
    """Per-cell wall-time / provenance lines (the observable speedup)."""
    from .telemetry import cell_provenance

    if not cells:
        return
    provenances = [cell_provenance(c) for c in cells]
    for cell, provenance in zip(cells, provenances):
        source = _PROVENANCE_SOURCES.get(provenance, provenance)
        spec = getattr(cell, "policy_spec", None)
        label = cell.policy_name
        if spec and spec != cell.policy_name:
            label = f"{cell.policy_name} <{spec}>"
        print(
            f"  [{label} @ {cell.scenario_name}] "
            f"{cell.wall_seconds:.2f}s {source}"
        )
    saved = sum(
        c.wall_seconds for c, p in zip(cells, provenances) if p != "computed"
    )
    split = ", ".join(
        f"{provenances.count(kind)} {label}"
        for kind, label in _PROVENANCE_SOURCES.items()
        if provenances.count(kind)
    )
    print(
        f"  cells: {len(cells)} ({split}), "
        f"simulation seconds saved: {saved:.2f}"
    )


def _cmd_table(args: argparse.Namespace) -> int:
    names = list(_TABLES) if args.which == "all" else [args.which]
    feed = _make_cell_feed(args)
    for name in names:
        build, title = _TABLES[name]
        comparison = build(
            scale=args.scale, seed=args.seed, policies=args.policy,
            **_execution_kwargs(args, feed)
        )
        print(render_table(list(comparison.summaries), title))
        _print_cell_stats(comparison.cells)
        print()
    _write_cell_telemetry(feed, args)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    svg_document = None
    feed = _make_cell_feed(args)
    execution = _execution_kwargs(args, feed)
    if args.which == "2":
        figure = figures.figure2(
            scale=args.scale, seed=args.seed, horizon=args.horizon, **execution
        )
        print(figure.render())
        if args.svg:
            from .analysis.svg import cdf_svg

            svg_document = cdf_svg(list(figure.cdf_points))
    elif args.which == "3":
        figure = figures.figure3(scale=args.scale, seed=args.seed, **execution)
        print(figures.render_figure3(figure))
        if args.svg:
            from .analysis.svg import stacked_bars_svg

            svg_document = stacked_bars_svg(figure.summaries)
    else:
        figure = figures.figure4(
            scale=args.scale, seed=args.seed, horizon=args.horizon, **execution
        )
        print(figure.render())
        if args.svg:
            from .analysis.svg import timeseries_svg

            svg_document = timeseries_svg(figure.analysis.points)
    if svg_document is not None:
        from .analysis.svg import write_svg

        write_svg(svg_document, args.svg)
        print(f"wrote {args.svg}")
    _write_cell_telemetry(feed, args)
    return 0


def _build_scenario(args: argparse.Namespace):
    builder = _SCENARIOS[args.scenario]
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return builder(**kwargs)


def _cmd_run(args: argparse.Namespace) -> int:
    from .faults import NO_FAULTS
    from .simulator.engine import SimulationEngine
    from .telemetry import Instrumentation, MetricsRegistry, write_telemetry_dir

    scenario = None if args.trace else _build_scenario(args)
    policy = policy_from_spec(
        args.policy, defaults={"wait_threshold": args.wait_threshold}
    )
    scheduler = initial_scheduler_from_name(args.initial_scheduler)
    observer = None
    observers = ()
    if args.events:
        from .simulator.observer import JsonlEventWriter

        observer = JsonlEventWriter(args.events)
        observers = (observer,)
    registry = MetricsRegistry() if args.telemetry_dir else None
    instrumentation = Instrumentation(
        observers=observers, metrics=registry, profile=args.profile
    )
    faults = NO_FAULTS
    if args.machine_mtbf is not None or args.job_failure_prob > 0.0:
        from .faults import FaultConfig, MachineChurn, RetryPolicy
        from .workload.distributions import Exponential

        churn = (
            MachineChurn(
                mtbf=Exponential(args.machine_mtbf),
                mttr=Exponential(args.machine_mttr),
            )
            if args.machine_mtbf is not None
            else None
        )
        faults = FaultConfig(
            machine_churn=churn,
            job_failure_probability=args.job_failure_prob,
            retry=RetryPolicy(max_attempts=args.max_attempts),
        )
    if registry is not None and args.telemetry_dir:
        _INTERRUPT_FLUSHERS.append(
            lambda: write_telemetry_dir(registry, args.telemetry_dir)
        )
    config = SimulationConfig(
        strict=False, instrumentation=instrumentation, faults=faults
    )
    if args.trace:
        # Real-trace replay: stream the file through the engine with an
        # OnlineResults sink — constant memory regardless of trace size.
        from .simulator.online import OnlineResults
        from .workload.traces import default_replay_spec

        template, cluster = _ingest_cluster(args)
        spec = default_replay_spec(template)
        engine = SimulationEngine(
            spec.replay(args.trace, args.trace_format),
            cluster,
            policy=policy,
            initial_scheduler=scheduler,
            config=config,
            sink=OnlineResults(),
        )
        result = engine.run()
        summary = result.summary()
        title = f"trace={args.trace} ({result.job_count} jobs)"
    else:
        engine = SimulationEngine(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            initial_scheduler=scheduler,
            config=config,
        )
        result = engine.run()
        summary = summarize(result)
        title = f"scenario={scenario.name} ({len(scenario.trace)} jobs)"
    print(render_table([summary], title))
    print()
    print(render_waste_components([summary]))
    if result.fault_stats is not None:
        print()
        print(result.fault_stats.render())
    if observer is not None:
        print(f"\nwrote {observer.written} events to {args.events}")
    if args.profile:
        report = engine.profile_report()
        if report is not None:
            print()
            print(report.render())
    if registry is not None:
        prom, jsonl = write_telemetry_dir(registry, args.telemetry_dir)
        print(f"wrote {prom} and {jsonl} (render with 'repro stats {args.telemetry_dir}')")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .experiments.fault_sweep import fault_sweep

    sweep = fault_sweep(
        mtbf_minutes=args.mtbf,
        mttr_minutes=args.mttr,
        scale=args.scale,
        seed=args.seed,
        job_failure_probability=args.job_failure_prob,
    )
    print(sweep.render())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .telemetry import load_telemetry_dir, render_stats

    print(render_stats(load_telemetry_dir(args.directory)))
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from .policies import available_policies, available_selectors

    def _render(kind, entries) -> None:
        print(f"{kind}:")
        width = max((len(e.name) for e in entries), default=0)
        for entry in entries:
            context = (
                f"  [needs context: {', '.join(entry.context)}]"
                if entry.context
                else ""
            )
            print(f"  {entry.name:<{width}}  {entry.description}{context}")

    _render("policies", available_policies())
    print()
    _render("selectors", available_selectors())
    print()
    print(
        "spec grammar: NAME or NAME:key=value,...  (nested selectors: "
        "selector=name(key=value)); see docs/policies.md"
    )
    return 0


def _cmd_run_grid(args: argparse.Namespace) -> int:
    from .experiments.cache import open_cache
    from .experiments.checkpoint import GridCheckpoint
    from .experiments.parallel import run_grid_parallel
    from .fabric import (
        LocalPoolBackend,
        backend_from_spec,
        build_grid,
        run_grid_fabric,
        shard_tasks,
    )

    if (args.shard_id is None) != (args.num_shards is None):
        raise ReproError("--shard-id and --num-shards must be given together")
    tasks = build_grid(
        args.preset, scale=args.scale, seed=args.seed, policies=args.policy
    )
    total_cells = len(tasks)
    if args.num_shards is not None:
        tasks = shard_tasks(tasks, args.shard_id, args.num_shards)
        print(
            f"static shard {args.shard_id}/{args.num_shards}: "
            f"{len(tasks)} of {total_cells} cells"
        )
    if args.supervise:
        import signal

        from .fabric import SupervisedWorkerBackend

        if not 1 <= args.min_workers <= args.max_workers:
            raise ReproError(
                "--supervise needs 1 <= --min-workers <= --max-workers "
                f"(got {args.min_workers}..{args.max_workers})"
            )
        backend = SupervisedWorkerBackend(
            min_workers=args.min_workers, max_workers=args.max_workers
        )
        # SIGTERM asks for a graceful drain: stop the fleet, leave the
        # leases and cache coherent, exit nonzero.  A resumed run picks
        # up exactly the unpublished cells.
        signal.signal(
            signal.SIGTERM, lambda *_: backend.request_drain()
        )
    else:
        backend = backend_from_spec(args.backend)
    cache = open_cache(args.cache_dir, False if args.no_cache else None)
    checkpoint = GridCheckpoint(args.checkpoint) if args.checkpoint else None
    feed = _make_cell_feed(args)
    registry = None
    if args.telemetry_dir:
        from .telemetry import MetricsRegistry

        registry = MetricsRegistry()

    if cache is None:
        # No shared cache, no coordination medium: only the local
        # backend can run, serially or pooled.  Static sharding still
        # applies, which is exactly the degraded multi-host mode.
        if not isinstance(backend, LocalPoolBackend):
            raise ReproError(
                f"backend {backend.name!r} needs a shared cache directory "
                "(--cache-dir or REPRO_CACHE_DIR); cache-less runs support "
                "--backend local[:N] with --shard-id/--num-shards"
            )
        grid = run_grid_parallel(
            tasks,
            n_workers=backend.n_workers,
            checkpoint=checkpoint,
            keep_going=True,
            progress=feed,
        )
        backend_name = backend.name
        worker_totals = ()
    else:
        report = run_grid_fabric(
            tasks,
            backend,
            cache,
            checkpoint=checkpoint,
            progress=feed,
            registry=registry,
            keep_going=True,
            lease_ttl=args.lease_ttl,
        )
        grid = report
        backend_name = report.backend
        worker_totals = report.worker_totals

    _print_cell_stats(list(grid.completed))
    split = ", ".join(
        f"{count} {_PROVENANCE_SOURCES.get(kind, kind)}"
        for kind, count in grid.provenance_counts().items()
    )
    print(
        f"  backend {backend_name}: {len(grid.completed)}/{len(tasks)} "
        f"cells ({split or 'none'})"
    )
    if worker_totals:
        print(
            "  fleet: "
            + ", ".join(f"{k}={v}" for k, v in worker_totals)
        )
    if cache is not None:
        print(f"  {cache.stats.as_line()}")
    for failure in grid.failures:
        print(
            f"  FAILED {failure.cell_id}: {failure.error_type}: "
            f"{failure.message}",
            file=sys.stderr,
        )
    if registry is not None and args.telemetry_dir:
        from .telemetry import write_telemetry_dir

        prom, jsonl = write_telemetry_dir(registry, args.telemetry_dir)
        print(f"wrote {prom} and {jsonl}")
    _write_cell_telemetry(feed, args)
    return 0 if grid.ok else 1


def _parse_size(text: str) -> int:
    """``512M`` / ``2G`` / ``1048576`` -> bytes."""
    text = text.strip()
    units = {"K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}
    suffix = text[-1:].upper()
    try:
        if suffix in units:
            return int(float(text[:-1]) * units[suffix])
        return int(text)
    except ValueError:
        raise ReproError(
            f"bad size {text!r} (expected bytes or K/M/G/T suffix)"
        ) from None


def _parse_age(text: str) -> float:
    """``90m`` / ``36h`` / ``7d`` / ``3600`` -> seconds."""
    text = text.strip()
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    suffix = text[-1:].lower()
    try:
        if suffix in units:
            return float(text[:-1]) * units[suffix]
        return float(text)
    except ValueError:
        raise ReproError(
            f"bad age {text!r} (expected seconds or s/m/h/d/w suffix)"
        ) from None


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments.cache import ResultCache, resolve_cache_dir

    directory = resolve_cache_dir(args.directory)
    if directory is None:
        raise ReproError(
            "no cache directory (pass one or set REPRO_CACHE_DIR)"
        )
    if not directory.is_dir():
        raise ReproError(f"cache directory not found: {directory}")
    cache = ResultCache(directory)
    if args.action == "stats":
        print(f"cache {directory}: {cache.disk_stats().as_line()}")
        return 0
    max_bytes = _parse_size(args.max_bytes) if args.max_bytes else None
    max_age = _parse_age(args.max_age) if args.max_age else None
    if max_bytes is None and max_age is None:
        raise ReproError("cache gc needs --max-bytes and/or --max-age")
    report = cache.gc(
        max_bytes=max_bytes, max_age_seconds=max_age, dry_run=args.dry_run
    )
    print(f"cache {directory}: {report.as_line()}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import SCENARIOS, run_scenario

    if args.action == "list":
        width = max(len(name) for name in SCENARIOS)
        for name, description in SCENARIOS.items():
            print(f"  {name:<{width}}  {description}")
        return 0
    if args.scenario not in SCENARIOS:
        known = ", ".join(SCENARIOS)
        raise ReproError(f"unknown scenario {args.scenario!r} (known: {known})")
    report = run_scenario(
        args.scenario, seed=args.seed, workers=args.workers
    )
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        verdict = "OK" if report.ok else "VIOLATED"
        print(
            f"chaos {report.scenario} (seed {report.seed}): {verdict} — "
            f"{report.cells} cells in {report.wall_seconds:.2f}s, "
            f"recovery {report.recovery_seconds:.2f}s, "
            f"{report.restarts} restart(s), "
            f"{report.quarantined} quarantined, "
            f"{report.cells_recovered} cell(s) recovered, "
            f"{report.takeovers} takeover(s), "
            f"{report.swept_leases} lease(s) swept"
        )
        for violation in report.violations:
            print(f"  VIOLATION: {violation}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    workload_io.trace_to_jsonl(scenario.trace, args.output)
    stats = scenario.trace.stats()
    print(
        f"wrote {stats.job_count} jobs spanning {stats.horizon_minutes:.0f} minutes "
        f"to {args.output}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validation import validate_paper_claims

    report = validate_paper_claims(
        scale=args.scale, seed=args.seed, year_horizon=args.year_horizon
    )
    print(report.render())
    return 0 if report.passed else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.export import (
        write_cdf_csv,
        write_job_records_csv,
        write_summaries_csv,
        write_utilization_csv,
    )
    from .analysis.utilization import analyze_utilization

    scenario = _build_scenario(args)
    policy = policy_from_spec(args.policy)
    result = run_simulation(
        scenario.trace,
        scenario.cluster,
        policy=policy,
        config=SimulationConfig(strict=False),
    )
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    write_job_records_csv(result, outdir / "job_records.csv")
    write_summaries_csv([summarize(result)], outdir / "summary.csv")
    write_utilization_csv(
        analyze_utilization(result, up_to_minute=scenario.trace.horizon()),
        outdir / "utilization.csv",
    )
    written = ["job_records.csv", "summary.csv", "utilization.csv"]
    if any(r.was_suspended for r in result.completed_records()):
        write_cdf_csv(result, outdir / "suspension_cdf.csv")
        written.append("suspension_cdf.csv")
    print(f"wrote {', '.join(written)} to {outdir}")
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    trace = workload_io.trace_from_jsonl(args.input)
    stats = trace.stats()
    print(f"jobs:               {stats.job_count}")
    print(f"horizon (minutes):  {stats.horizon_minutes:.1f}")
    print(f"mean runtime:       {stats.mean_runtime:.1f}")
    print(f"mean interarrival:  {stats.mean_interarrival:.3f}")
    print(f"total core-minutes: {stats.total_core_minutes:.0f}")
    for priority in sorted(stats.priority_counts):
        count = stats.priority_counts[priority]
        print(f"priority {priority:>4}:      {count} ({100.0 * count / stats.job_count:.1f}%)")
    return 0


def _ingest_cluster(args: argparse.Namespace):
    """The (template, cluster) pair the ingest-family commands share.

    ``make-fixture`` and ``ingest`` derive sizes from the *same* cluster
    construction, so a fixture generated at ``--scale X`` offers its
    target utilisation to an ``ingest --scale X`` run — which is what
    keeps the in-flight job set (and therefore peak RSS) bounded.
    """
    from .workload.cluster import ClusterTemplate
    from .workload.distributions import RandomStreams

    scale = args.scale if args.scale is not None else 0.25
    template = ClusterTemplate(scale=scale)
    # Fixed cluster seed: --seed varies the *workload* (fixture content),
    # never the cluster, so fixture sizing and replay sizing agree.
    return template, template.build(RandomStreams(2010))


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as json_module
    import resource
    import time

    from .workload.characterization import StreamingCharacterizer
    from .workload.traces import default_replay_spec

    template, cluster = _ingest_cluster(args)
    overrides = {"stride": args.stride, "max_jobs": args.max_jobs}
    if args.window is not None:
        overrides["window_start_minutes"] = args.window[0]
        overrides["window_end_minutes"] = args.window[1]
    spec = default_replay_spec(None if args.unrestricted else template, **overrides)
    policy = policy_from_spec(args.policy)
    characterizer = StreamingCharacterizer()

    from .simulator.simulation import run_streaming

    started = time.perf_counter()
    sink = run_streaming(
        characterizer.tee(spec.replay(args.trace, args.trace_format)),
        cluster,
        policy=policy,
        config=SimulationConfig(strict=False),
    )
    wall = time.perf_counter() - started
    # ru_maxrss is in KB on Linux; this is the whole process's
    # high-water mark, which is exactly what the ceiling gate is about.
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    jobs_per_second = sink.job_count / wall if wall > 0 else 0.0
    warnings = characterizer.check_paper_regime(cluster.total_cores)

    if args.json:
        summary = sink.summary()
        print(
            json_module.dumps(
                {
                    "path": args.trace,
                    "format": args.trace_format,
                    "policy": sink.policy_name,
                    "jobs": sink.job_count,
                    "completed": sink.completed_count,
                    "rejected": sink.rejected_count,
                    "suspended": sink.suspended_count,
                    "wall_seconds": wall,
                    "jobs_per_second": jobs_per_second,
                    "peak_rss_mb": peak_rss_mb,
                    "total_cores": cluster.total_cores,
                    "offered_load": characterizer.utilization(cluster.total_cores),
                    "avg_ct_all": summary.avg_ct_all,
                    "mean_wait": summary.waste.wait_time,
                    "mean_utilization": sink.mean_utilization(),
                    "warnings": warnings,
                },
                indent=2,
            )
        )
    else:
        print(render_table([sink.summary()], f"trace={args.trace} ({sink.job_count} jobs)"))
        print()
        print(characterizer.render(cluster.total_cores))
        print()
        print(sink.wait_histogram.render("wait time"))
        if sink.suspension_histogram.count:
            print(sink.suspension_histogram.render("suspension time"))
        print(
            f"\ningested {sink.job_count} jobs in {wall:.1f}s "
            f"({jobs_per_second:,.0f} jobs/s), peak RSS {peak_rss_mb:.0f} MB"
        )
    if args.rss_ceiling_mb is not None and peak_rss_mb > args.rss_ceiling_mb:
        print(
            f"error: peak RSS {peak_rss_mb:.0f} MB exceeds the "
            f"{args.rss_ceiling_mb:.0f} MB ceiling — streaming ingestion is "
            f"no longer constant-memory",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_make_fixture(args: argparse.Namespace) -> int:
    from .workload.traces import generate_google_fixture, generate_swf_fixture

    template, cluster = _ingest_cluster(args)
    generate = (
        generate_swf_fixture if args.trace_format == "swf" else generate_google_fixture
    )
    seed = args.seed if args.seed is not None else 1
    totals = generate(
        args.output,
        args.jobs,
        seed=seed,
        target_cores=cluster.total_cores,
        utilization=args.utilization,
        mean_runtime_minutes=args.mean_runtime,
    )
    print(
        f"wrote {args.jobs} {args.trace_format} jobs spanning "
        f"{totals['horizon_minutes']:.0f} minutes to {args.output} "
        f"(sized for a {cluster.total_cores}-core cluster at "
        f"{args.utilization:g} load; replay with "
        f"'repro ingest {args.output}"
        + (" --format google" if args.trace_format == "google" else "")
        + (f" --scale {args.scale:g}'" if args.scale is not None else "'")
        + ")"
    )
    return 0


_COMMANDS = {
    "table": _cmd_table,
    "figure": _cmd_figure,
    "run": _cmd_run,
    "faults": _cmd_faults,
    "run-grid": _cmd_run_grid,
    "chaos": _cmd_chaos,
    "policies": _cmd_policies,
    "cache": _cmd_cache,
    "stats": _cmd_stats,
    "generate-trace": _cmd_generate_trace,
    "analyze-trace": _cmd_analyze_trace,
    "validate": _cmd_validate,
    "export": _cmd_export,
    "ingest": _cmd_ingest,
    "make-fixture": _cmd_make_fixture,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    del _INTERRUPT_FLUSHERS[:]
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # Unreadable trace/fixture/telemetry paths surface as plain
        # CLI errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Flush whatever telemetry the interrupted command had gathered
        # (each write is atomic, so a second Ctrl-C can't corrupt it),
        # then exit with the conventional 128+SIGINT code.
        for flush in _INTERRUPT_FLUSHERS:
            try:
                flush()
            except Exception:
                pass
        print("interrupted; partial telemetry flushed", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
