"""Serialisation of traces and cluster specs.

Traces are stored as JSON Lines (one job per line) and clusters as a
single JSON document.  Both formats round-trip exactly and are stable
across library versions, so generated workloads can be archived next to
experiment results.  CSV export is provided for traces as well, for
spreadsheet-based inspection.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import ClusterError, TraceError
from .cluster import ClusterSpec, MachineSpec, PoolSpec
from .trace import Trace, TraceJob

__all__ = [
    "trace_to_jsonl",
    "trace_from_jsonl",
    "trace_to_csv",
    "trace_from_csv",
    "cluster_to_json",
    "cluster_from_json",
]

PathLike = Union[str, Path]

_TRACE_FIELDS = [
    "job_id",
    "submit_minute",
    "runtime_minutes",
    "priority",
    "cores",
    "memory_gb",
    "os_family",
    "candidate_pools",
    "task_id",
    "user",
]


def _job_to_dict(job: TraceJob) -> Dict:
    return {
        "job_id": job.job_id,
        "submit_minute": job.submit_minute,
        "runtime_minutes": job.runtime_minutes,
        "priority": job.priority,
        "cores": job.cores,
        "memory_gb": job.memory_gb,
        "os_family": job.os_family,
        "candidate_pools": list(job.candidate_pools) if job.candidate_pools else None,
        "task_id": job.task_id,
        "user": job.user,
    }


def _job_from_dict(record: Dict) -> TraceJob:
    try:
        pools = record.get("candidate_pools")
        return TraceJob(
            job_id=int(record["job_id"]),
            submit_minute=float(record["submit_minute"]),
            runtime_minutes=float(record["runtime_minutes"]),
            priority=int(record.get("priority", 0)),
            cores=int(record.get("cores", 1)),
            memory_gb=float(record.get("memory_gb", 1.0)),
            os_family=str(record.get("os_family", "linux")),
            candidate_pools=tuple(pools) if pools else None,
            task_id=int(record["task_id"]) if record.get("task_id") is not None else None,
            user=str(record.get("user", "")),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceError(f"malformed trace record: {record!r} ({exc})") from exc


def trace_to_jsonl(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` as JSON Lines (one job per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for job in trace:
            handle.write(json.dumps(_job_to_dict(job)) + "\n")


def trace_from_jsonl(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`trace_to_jsonl`."""
    jobs: List[TraceJob] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_number}: invalid JSON ({exc})") from exc
            jobs.append(_job_from_dict(record))
    return Trace(jobs)


def trace_to_csv(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` as CSV; ``candidate_pools`` joined with ``|``."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_TRACE_FIELDS)
        writer.writeheader()
        for job in trace:
            record = _job_to_dict(job)
            pools = record["candidate_pools"]
            record["candidate_pools"] = "|".join(pools) if pools else ""
            record["task_id"] = "" if record["task_id"] is None else record["task_id"]
            writer.writerow(record)


def trace_from_csv(path: PathLike) -> Trace:
    """Read a trace previously written by :func:`trace_to_csv`."""
    jobs: List[TraceJob] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            record: Dict = dict(row)
            record["candidate_pools"] = (
                record["candidate_pools"].split("|") if record.get("candidate_pools") else None
            )
            record["task_id"] = record["task_id"] if record.get("task_id") else None
            jobs.append(_job_from_dict(record))
    return Trace(jobs)


def cluster_to_json(cluster: ClusterSpec, path: PathLike) -> None:
    """Write a cluster spec to ``path`` as a single JSON document."""
    document = {
        "pools": [
            {
                "pool_id": pool.pool_id,
                "machines": [
                    {
                        "machine_id": m.machine_id,
                        "cores": m.cores,
                        "memory_gb": m.memory_gb,
                        "speed_factor": m.speed_factor,
                        "os_family": m.os_family,
                    }
                    for m in pool.machines
                ],
            }
            for pool in cluster
        ]
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)


def cluster_from_json(path: PathLike) -> ClusterSpec:
    """Read a cluster spec previously written by :func:`cluster_to_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ClusterError(f"{path}: invalid JSON ({exc})") from exc
    try:
        pools = []
        for pool_record in document["pools"]:
            pool_id = pool_record["pool_id"]
            machines = tuple(
                MachineSpec(
                    machine_id=m["machine_id"],
                    pool_id=pool_id,
                    cores=int(m["cores"]),
                    memory_gb=float(m["memory_gb"]),
                    speed_factor=float(m.get("speed_factor", 1.0)),
                    os_family=str(m.get("os_family", "linux")),
                )
                for m in pool_record["machines"]
            )
            pools.append(PoolSpec(pool_id=pool_id, machines=machines))
    except (KeyError, ValueError, TypeError) as exc:
        raise ClusterError(f"{path}: malformed cluster document ({exc})") from exc
    return ClusterSpec(pools)
