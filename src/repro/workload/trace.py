"""Job trace model.

A *trace* is the simulator's only workload input: an immutable,
time-sorted sequence of :class:`TraceJob` records describing "the
complete information of the jobs submitted to the site ... including
computing resource and memory requirements, submission time and
priority" (paper, Section 3.1).

The real NetBatch traces are proprietary; traces here are produced by
:mod:`repro.workload.generator` or loaded from disk via
:mod:`repro.workload.io`.  The container deliberately supports the
slicing operation the paper's evaluation relies on — extracting the
busy-week window of submissions (minutes 76,000–86,080 of the year
trace) — via :meth:`Trace.window`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import TraceError

__all__ = ["TraceJob", "Trace", "TraceStats"]

#: Conventional priority levels.  Anything is allowed as long as it is an
#: int; higher values preempt lower ones (paper, Section 2.2).
PRIORITY_LOW = 0
PRIORITY_MEDIUM = 50
PRIORITY_HIGH = 100


@dataclass(frozen=True)
class TraceJob:
    """One submitted job, as recorded in a NetBatch-style trace.

    Attributes:
        job_id: unique non-negative identifier.
        submit_minute: submission time, in minutes from trace start.
        runtime_minutes: pure service demand at reference machine speed
            (the time the job needs on a ``speed_factor == 1.0`` core,
            exclusive of any waiting or suspension).
        priority: integer priority; higher preempts lower.
        cores: number of cores the job occupies while running.
        memory_gb: resident memory the job holds while running *or
            suspended* (suspension keeps memory allocated on the host).
        os_family: OS requirement; the job is only eligible on machines
            with the same family.
        candidate_pools: optional whitelist of pool ids the job may run
            in.  ``None`` means "any pool".  The paper notes that
            latency-sensitive high-priority jobs "are usually configured
            to only run in specific sets of physical pools".
        task_id: optional logical task grouping (Section 2.2: a task's
            result is useful only once ~all of its jobs complete).
        user: submitting user/business group, for bookkeeping only.
    """

    job_id: int
    submit_minute: float
    runtime_minutes: float
    priority: int = PRIORITY_LOW
    cores: int = 1
    memory_gb: float = 1.0
    os_family: str = "linux"
    candidate_pools: Optional[Tuple[str, ...]] = None
    task_id: Optional[int] = None
    user: str = ""

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise TraceError(f"job_id must be >= 0, got {self.job_id}")
        if self.submit_minute < 0:
            raise TraceError(f"job {self.job_id}: submit_minute must be >= 0")
        if self.runtime_minutes <= 0:
            raise TraceError(
                f"job {self.job_id}: runtime_minutes must be > 0, got {self.runtime_minutes}"
            )
        if self.cores < 1:
            raise TraceError(f"job {self.job_id}: cores must be >= 1, got {self.cores}")
        if self.memory_gb <= 0:
            raise TraceError(f"job {self.job_id}: memory_gb must be > 0, got {self.memory_gb}")
        if self.candidate_pools is not None and len(self.candidate_pools) == 0:
            raise TraceError(f"job {self.job_id}: candidate_pools may not be an empty tuple")

    def restricted_to(self, pools: Sequence[str]) -> "TraceJob":
        """Return a copy whose candidate pools are ``pools``."""
        return replace(self, candidate_pools=tuple(pools))

    def is_allowed_in(self, pool_id: str) -> bool:
        """Whether this job may run in ``pool_id`` at all."""
        return self.candidate_pools is None or pool_id in self.candidate_pools


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (used in reports and tests)."""

    job_count: int
    horizon_minutes: float
    total_core_minutes: float
    mean_runtime: float
    mean_interarrival: float
    priority_counts: Dict[int, int] = field(default_factory=dict)

    def fraction_with_priority_at_least(self, priority: int) -> float:
        """Fraction of jobs whose priority is >= ``priority``."""
        if self.job_count == 0:
            return 0.0
        matching = sum(c for p, c in self.priority_counts.items() if p >= priority)
        return matching / self.job_count


class Trace:
    """Immutable, time-sorted container of :class:`TraceJob` records.

    Construction validates uniqueness of job ids and sorts by submission
    time (stable, so equal-time jobs keep their given order, matching
    FIFO submission semantics).
    """

    def __init__(self, jobs: Sequence[TraceJob]) -> None:
        ordered = sorted(jobs, key=lambda j: j.submit_minute)
        seen: set = set()
        for job in ordered:
            if job.job_id in seen:
                raise TraceError(f"duplicate job_id in trace: {job.job_id}")
            seen.add(job.job_id)
        self._jobs: Tuple[TraceJob, ...] = tuple(ordered)

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[TraceJob]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> TraceJob:
        return self._jobs[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trace) and self._jobs == other._jobs

    def __repr__(self) -> str:
        horizon = self.horizon()
        return f"Trace(jobs={len(self._jobs)}, horizon={horizon:.0f}min)"

    # -- accessors ---------------------------------------------------------

    @property
    def jobs(self) -> Tuple[TraceJob, ...]:
        """The jobs, sorted by submission time."""
        return self._jobs

    def horizon(self) -> float:
        """Submission time of the last job (0 for an empty trace)."""
        return self._jobs[-1].submit_minute if self._jobs else 0.0

    def job_by_id(self, job_id: int) -> TraceJob:
        """Look up a job by id (linear scan; for tests and debugging)."""
        for job in self._jobs:
            if job.job_id == job_id:
                return job
        raise TraceError(f"no job with id {job_id} in trace")

    # -- transformations ---------------------------------------------------

    def window(self, start_minute: float, end_minute: float) -> "Trace":
        """Jobs with ``start_minute <= submit < end_minute``.

        This mirrors the paper's selection of the busy week (submission
        time between minutes 76,000 and 86,080 of the year trace).
        Submission times are preserved, not re-based.
        """
        if end_minute < start_minute:
            raise TraceError(
                f"window end ({end_minute}) must be >= start ({start_minute})"
            )
        return Trace(
            [j for j in self._jobs if start_minute <= j.submit_minute < end_minute]
        )

    def rebased(self) -> "Trace":
        """Shift submission times so the first job submits at minute 0."""
        if not self._jobs:
            return self
        offset = self._jobs[0].submit_minute
        return Trace([replace(j, submit_minute=j.submit_minute - offset) for j in self._jobs])

    def filter(self, predicate) -> "Trace":
        """Jobs for which ``predicate(job)`` is true, as a new trace."""
        return Trace([j for j in self._jobs if predicate(j)])

    def merged_with(self, other: "Trace") -> "Trace":
        """Union of two traces (job ids must not collide)."""
        return Trace(list(self._jobs) + list(other.jobs))

    def head(self, count: int) -> "Trace":
        """The earliest ``count`` jobs, as a new trace."""
        if count < 0:
            raise TraceError(f"head count must be >= 0, got {count}")
        return Trace(self._jobs[:count])

    # -- statistics ----------------------------------------------------------

    def stats(self) -> TraceStats:
        """Compute :class:`TraceStats` for this trace."""
        if not self._jobs:
            return TraceStats(
                job_count=0,
                horizon_minutes=0.0,
                total_core_minutes=0.0,
                mean_runtime=0.0,
                mean_interarrival=0.0,
            )
        priority_counts: Dict[int, int] = {}
        total_runtime = 0.0
        total_core_minutes = 0.0
        for job in self._jobs:
            priority_counts[job.priority] = priority_counts.get(job.priority, 0) + 1
            total_runtime += job.runtime_minutes
            total_core_minutes += job.runtime_minutes * job.cores
        horizon = self._jobs[-1].submit_minute - self._jobs[0].submit_minute
        mean_interarrival = horizon / (len(self._jobs) - 1) if len(self._jobs) > 1 else 0.0
        return TraceStats(
            job_count=len(self._jobs),
            horizon_minutes=horizon,
            total_core_minutes=total_core_minutes,
            mean_runtime=total_runtime / len(self._jobs),
            mean_interarrival=mean_interarrival,
            priority_counts=priority_counts,
        )

    def offered_load(self, total_cores: int) -> float:
        """Offered load relative to a cluster with ``total_cores`` cores.

        Defined as total core-minutes of demand divided by the
        core-minutes the cluster provides over the trace's span; a value
        around 0.4 corresponds to the paper's ~40% average utilization.
        """
        if total_cores <= 0:
            raise TraceError(f"total_cores must be > 0, got {total_cores}")
        stats = self.stats()
        if stats.horizon_minutes <= 0:
            return 0.0
        return stats.total_core_minutes / (total_cores * stats.horizon_minutes)

    @staticmethod
    def empty() -> "Trace":
        """An empty trace."""
        return Trace([])


# Re-export a sorted list of jobs grouped by task for task-level analysis.
def jobs_by_task(trace: Trace) -> Dict[int, List[TraceJob]]:
    """Group a trace's jobs by ``task_id`` (jobs without one are skipped).

    The paper motivates rescheduling partly through *tasks*: sets of
    jobs whose combined result is only useful when (nearly) all of them
    complete, so one straggling suspended job wastes the whole task's
    work.  Task-level metrics in :mod:`repro.metrics` build on this
    grouping.
    """
    grouped: Dict[int, List[TraceJob]] = {}
    for job in trace:
        if job.task_id is not None:
            grouped.setdefault(job.task_id, []).append(job)
    return grouped
