"""Arrival processes for workload generation.

Two processes model the two job populations the paper describes:

* a :class:`PoissonProcess` for the steady stream of low-priority
  simulation jobs submitted by engineers throughout the year, and
* a :class:`BurstProcess` (a two-state Markov-modulated Poisson
  process) for high-priority jobs, which the paper observes to be
  "bursty in nature ... job suspension can spike suddenly due to the
  arrival of a large number of higher priority jobs and last from
  several hours to a week" (Section 2.3).

Both produce sorted arrival times (in simulated minutes) over a finite
horizon.  :class:`BurstProcess` additionally reports the burst windows
it generated, so the workload generator can pin each burst's jobs to a
specific set of preferred pools — the mechanism behind the paper's
observation that suspension arises even at 40–60% overall utilization.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["PoissonProcess", "DiurnalPoissonProcess", "BurstProcess", "BurstWindow"]


@dataclass(frozen=True)
class BurstWindow:
    """A single on-period of the burst process.

    Attributes:
        start: minute at which the burst begins.
        end: minute at which the burst ends (exclusive).
        arrivals: arrival times falling inside the window, sorted.
    """

    start: float
    end: float
    arrivals: Tuple[float, ...]

    @property
    def duration(self) -> float:
        """Length of the burst in minutes."""
        return self.end - self.start

    def __len__(self) -> int:
        return len(self.arrivals)


@dataclass(frozen=True)
class PoissonProcess:
    """Homogeneous Poisson process with ``rate`` arrivals per minute."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(f"PoissonProcess: rate must be >= 0, got {self.rate}")

    def arrivals(self, horizon: float, rng: random.Random) -> List[float]:
        """Generate sorted arrival times on ``[0, horizon)``."""
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        if self.rate == 0:
            return []
        times: List[float] = []
        t = 0.0
        mean_gap = 1.0 / self.rate
        while True:
            t += rng.expovariate(1.0 / mean_gap)
            if t >= horizon:
                return times
            times.append(t)

    def iter_arrivals(self, horizon: float, rng: random.Random) -> Iterator[float]:
        """Lazily yield arrival times on ``[0, horizon)``."""
        if self.rate == 0:
            return
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            if t >= horizon:
                return
            yield t

    def expected_count(self, horizon: float) -> float:
        """Expected number of arrivals over ``horizon`` minutes."""
        return self.rate * horizon


@dataclass(frozen=True)
class DiurnalPoissonProcess:
    """Non-homogeneous Poisson process with daily and weekly cycles.

    Engineers submit simulation jobs during working hours; a year-long
    trace therefore shows day/night and weekday/weekend structure (the
    background texture of the paper's Figure 4).  The instantaneous
    rate is::

        rate(t) = base_rate * day(t) * week(t)
        day(t)  = 1 + daily_amplitude * cos(2*pi*(t - peak_minute_of_day)/1440)
        week(t) = weekend_factor on Saturday/Sunday, else 1

    sampled by thinning against the maximum rate.  Time zero is Monday
    00:00.

    Attributes:
        base_rate: mean arrivals/minute before modulation.
        daily_amplitude: relative size of the day/night swing, in
            ``[0, 1)``.
        weekend_factor: rate multiplier applied on days 5 and 6.
        peak_minute_of_day: minute of the day (0-1439) of peak load.
    """

    base_rate: float
    daily_amplitude: float = 0.4
    weekend_factor: float = 0.5
    peak_minute_of_day: float = 840.0

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise ConfigurationError("base_rate must be >= 0")
        if not 0.0 <= self.daily_amplitude < 1.0:
            raise ConfigurationError("daily_amplitude must be in [0, 1)")
        if not 0.0 < self.weekend_factor <= 1.0:
            raise ConfigurationError("weekend_factor must be in (0, 1]")
        if not 0.0 <= self.peak_minute_of_day < 1440.0:
            raise ConfigurationError("peak_minute_of_day must be in [0, 1440)")

    def rate_at(self, minute: float) -> float:
        """Instantaneous arrival rate at ``minute``."""
        day_phase = (
            2.0 * math.pi * (minute - self.peak_minute_of_day) / 1440.0
        )
        day_factor = 1.0 + self.daily_amplitude * math.cos(day_phase)
        day_of_week = int(minute // 1440.0) % 7
        week_factor = self.weekend_factor if day_of_week >= 5 else 1.0
        return self.base_rate * day_factor * week_factor

    def iter_arrivals(self, horizon: float, rng: random.Random) -> Iterator[float]:
        """Lazily yield arrival times on ``[0, horizon)`` (thinning)."""
        if self.base_rate == 0:
            return
        max_rate = self.base_rate * (1.0 + self.daily_amplitude)
        t = 0.0
        while True:
            t += rng.expovariate(max_rate)
            if t >= horizon:
                return
            if rng.random() <= self.rate_at(t) / max_rate:
                yield t

    def arrivals(self, horizon: float, rng: random.Random) -> List[float]:
        """Sorted arrival times on ``[0, horizon)``."""
        return list(self.iter_arrivals(horizon, rng))

    def expected_count(self, horizon: float) -> float:
        """Expected arrivals over ``horizon`` minutes (trapezoid integral)."""
        if horizon <= 0 or self.base_rate == 0:
            return 0.0
        step = 30.0
        total = 0.0
        t = 0.0
        while t < horizon:
            upper = min(t + step, horizon)
            total += (self.rate_at(t) + self.rate_at(upper)) / 2.0 * (upper - t)
            t = upper
        return total


@dataclass(frozen=True)
class BurstProcess:
    """Two-state (off/on) Markov-modulated Poisson process.

    In the *off* state no jobs arrive.  Off periods are exponential with
    mean ``mean_gap``; on entering the *on* state a burst of exponential
    mean duration ``mean_duration`` begins, during which arrivals are
    Poisson with rate ``burst_rate``.

    When ``first_burst_start`` is set the first window is deterministic
    (starting exactly there, lasting ``first_burst_duration`` or
    ``mean_duration``); the process continues stochastically after it.
    This mirrors the paper's evaluation design, which *selects* a week
    known to contain "a typical burst of high-priority jobs" — the
    busy-week scenario conditions on the burst the same way.

    The defaults are not meaningful on their own; the scenario presets
    in :mod:`repro.workload.scenarios` choose values that make bursts
    last "from several hours to a week" as in the paper.
    """

    mean_gap: float
    mean_duration: float
    burst_rate: float
    first_burst_start: Optional[float] = None
    first_burst_duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mean_gap <= 0:
            raise ConfigurationError(f"BurstProcess: mean_gap must be > 0, got {self.mean_gap}")
        if self.mean_duration <= 0:
            raise ConfigurationError(
                f"BurstProcess: mean_duration must be > 0, got {self.mean_duration}"
            )
        if self.burst_rate < 0:
            raise ConfigurationError(
                f"BurstProcess: burst_rate must be >= 0, got {self.burst_rate}"
            )
        if self.first_burst_start is not None and self.first_burst_start < 0:
            raise ConfigurationError("BurstProcess: first_burst_start must be >= 0")
        if self.first_burst_duration is not None and self.first_burst_duration <= 0:
            raise ConfigurationError("BurstProcess: first_burst_duration must be > 0")

    def windows(self, horizon: float, rng: random.Random) -> List[BurstWindow]:
        """Generate the burst windows (with their arrivals) on ``[0, horizon)``."""
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        result: List[BurstWindow] = []
        t = 0.0
        first = True
        while True:
            if first and self.first_burst_start is not None:
                t = self.first_burst_start
            else:
                t += rng.expovariate(1.0 / self.mean_gap)
            if t >= horizon:
                return result
            if first and self.first_burst_start is not None:
                duration = self.first_burst_duration or self.mean_duration
            else:
                duration = rng.expovariate(1.0 / self.mean_duration)
            first = False
            end = min(t + duration, horizon)
            arrivals: List[float] = []
            if self.burst_rate > 0:
                a = t
                while True:
                    a += rng.expovariate(self.burst_rate)
                    if a >= end:
                        break
                    arrivals.append(a)
            result.append(BurstWindow(start=t, end=end, arrivals=tuple(arrivals)))
            t = end

    def arrivals(self, horizon: float, rng: random.Random) -> List[float]:
        """Flattened, sorted arrival times of all bursts on ``[0, horizon)``."""
        times: List[float] = []
        for window in self.windows(horizon, rng):
            times.extend(window.arrivals)
        return times

    def expected_count(self, horizon: float) -> float:
        """Expected number of arrivals over ``horizon`` minutes.

        The long-run fraction of time spent in the on state is
        ``mean_duration / (mean_gap + mean_duration)``; a deterministic
        first burst contributes its full window separately.
        """
        on_fraction = self.mean_duration / (self.mean_gap + self.mean_duration)
        if self.first_burst_start is None:
            return self.burst_rate * on_fraction * horizon
        if self.first_burst_start >= horizon:
            return 0.0
        duration = self.first_burst_duration or self.mean_duration
        first_end = min(self.first_burst_start + duration, horizon)
        deterministic = self.burst_rate * (first_end - self.first_burst_start)
        return deterministic + self.burst_rate * on_fraction * max(0.0, horizon - first_end)
