"""Workload characterization: the paper's Section-2 methodology as a toolkit.

The paper's first contribution is "an analysis of job execution traces
... one of the first trace-driven efforts at empirically understanding
the performance characteristics of scheduling policies within a
distributed computing platform".  This module provides the
corresponding measurements over any :class:`~repro.workload.trace.Trace`
— ours or an imported one — so the synthetic generator's output can be
checked against the properties the paper reports (and against any real
trace a user substitutes):

* arrival-process statistics, including windowed burstiness (the Fano
  factor: variance-to-mean ratio of per-window arrival counts; 1 for a
  Poisson process, ≫1 for the bursty high-priority stream);
* runtime-distribution statistics (percentiles, tail weight);
* priority mix and per-business-group load shares;
* pool-affinity breadth (how constrained candidate sets are).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .distributions import quantile
from .trace import Trace

__all__ = [
    "ArrivalCharacterization",
    "RuntimeCharacterization",
    "MixCharacterization",
    "TraceCharacterization",
    "characterize",
    "fano_factor",
]


def fano_factor(
    arrival_minutes: List[float],
    window_minutes: float = 60.0,
    span: Optional[Tuple[float, float]] = None,
) -> float:
    """Variance-to-mean ratio of per-window arrival counts.

    1.0 for a homogeneous Poisson process; substantially above 1 for
    bursty arrivals (the paper's high-priority stream).

    ``span`` fixes the observation window; by default it is the
    arrivals' own extent.  When measuring one priority class of a
    longer trace, pass the whole trace's span — a class that arrives
    only in one burst is extremely bursty *over the trace*, even though
    it looks Poisson within the burst itself.
    """
    if window_minutes <= 0:
        raise ConfigurationError("window_minutes must be > 0")
    if not arrival_minutes:
        return 0.0
    if span is None:
        start = min(arrival_minutes)
        end = max(arrival_minutes)
    else:
        start, end = span
        if end < start:
            raise ConfigurationError("span end must be >= start")
    window_count = max(1, int(math.ceil((end - start) / window_minutes)))
    counts = [0] * window_count
    for minute in arrival_minutes:
        index = min(window_count - 1, int((minute - start) // window_minutes))
        counts[index] += 1
    mean = sum(counts) / window_count
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / window_count
    return variance / mean


@dataclass(frozen=True)
class ArrivalCharacterization:
    """Arrival-process statistics for one priority class (or all jobs).

    Attributes:
        job_count: arrivals measured.
        rate_per_minute: mean arrival rate over the span.
        interarrival_cv: coefficient of variation of interarrival gaps
            (1 for Poisson; > 1 indicates clustering).
        fano_factor: windowed burstiness (see :func:`fano_factor`).
    """

    job_count: int
    rate_per_minute: float
    interarrival_cv: float
    fano_factor: float


@dataclass(frozen=True)
class RuntimeCharacterization:
    """Runtime-distribution statistics.

    Attributes:
        mean: mean runtime (minutes).
        median: 50th percentile.
        p90: 90th percentile.
        p99: 99th percentile.
        maximum: longest runtime.
        tail_weight: fraction of total runtime mass contributed by the
            longest 10% of jobs — the heavy-tail signature (0.1 for a
            uniform distribution, larger when tails dominate).
    """

    mean: float
    median: float
    p90: float
    p99: float
    maximum: float
    tail_weight: float


@dataclass(frozen=True)
class MixCharacterization:
    """Composition of the workload.

    Attributes:
        priority_share: priority level -> fraction of jobs.
        group_load_share: user/group -> fraction of total core-minutes.
        restricted_fraction: fraction of jobs with a candidate-pool
            whitelist (ownership/affinity configuration).
        mean_candidate_pools: mean whitelist size over restricted jobs.
    """

    priority_share: Dict[int, float]
    group_load_share: Dict[str, float]
    restricted_fraction: float
    mean_candidate_pools: float


@dataclass(frozen=True)
class TraceCharacterization:
    """Full Section-2-style characterization of a trace."""

    arrivals_all: ArrivalCharacterization
    arrivals_by_priority: Dict[int, ArrivalCharacterization]
    runtime: RuntimeCharacterization
    mix: MixCharacterization

    def render(self) -> str:
        """Human-readable report."""
        lines = ["trace characterization"]
        a = self.arrivals_all
        lines.append(
            f"  arrivals: {a.job_count} jobs, {a.rate_per_minute:.3f}/min, "
            f"interarrival CV {a.interarrival_cv:.2f}, Fano {a.fano_factor:.1f}"
        )
        for priority in sorted(self.arrivals_by_priority):
            p = self.arrivals_by_priority[priority]
            lines.append(
                f"    priority {priority:>3}: {p.job_count} jobs, "
                f"Fano {p.fano_factor:.1f}"
            )
        r = self.runtime
        lines.append(
            f"  runtimes: mean {r.mean:.0f}, median {r.median:.0f}, "
            f"p90 {r.p90:.0f}, p99 {r.p99:.0f}, max {r.maximum:.0f} min; "
            f"top-decile mass {r.tail_weight * 100:.0f}%"
        )
        m = self.mix
        lines.append(
            f"  mix: {m.restricted_fraction * 100:.0f}% pool-restricted "
            f"(mean whitelist {m.mean_candidate_pools:.1f} pools)"
        )
        return "\n".join(lines)


def _characterize_arrivals(
    minutes: List[float],
    window_minutes: float,
    span: Optional[Tuple[float, float]] = None,
) -> ArrivalCharacterization:
    count = len(minutes)
    if count < 2:
        return ArrivalCharacterization(
            job_count=count, rate_per_minute=0.0, interarrival_cv=0.0, fano_factor=0.0
        )
    extent = minutes[-1] - minutes[0]
    gaps = [b - a for a, b in zip(minutes, minutes[1:])]
    mean_gap = sum(gaps) / len(gaps)
    if mean_gap > 0:
        variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean_gap
    else:
        cv = 0.0
    return ArrivalCharacterization(
        job_count=count,
        rate_per_minute=count / extent if extent > 0 else 0.0,
        interarrival_cv=cv,
        fano_factor=fano_factor(minutes, window_minutes, span=span),
    )


def characterize(
    trace: Trace, burstiness_window: float = 60.0
) -> TraceCharacterization:
    """Compute the full characterization of ``trace``."""
    if len(trace) == 0:
        raise ConfigurationError("cannot characterize an empty trace")
    all_minutes = [j.submit_minute for j in trace]
    by_priority: Dict[int, List[float]] = {}
    runtimes: List[float] = []
    group_core_minutes: Dict[str, float] = {}
    restricted = 0
    whitelist_sizes: List[int] = []
    for job in trace:
        by_priority.setdefault(job.priority, []).append(job.submit_minute)
        runtimes.append(job.runtime_minutes)
        group_core_minutes[job.user] = (
            group_core_minutes.get(job.user, 0.0)
            + job.runtime_minutes * job.cores
        )
        if job.candidate_pools is not None:
            restricted += 1
            whitelist_sizes.append(len(job.candidate_pools))

    runtimes.sort()
    total_mass = sum(runtimes)
    top_decile_start = int(math.floor(0.9 * len(runtimes)))
    tail_mass = sum(runtimes[top_decile_start:])
    runtime = RuntimeCharacterization(
        mean=total_mass / len(runtimes),
        median=quantile(runtimes, 0.5),
        p90=quantile(runtimes, 0.9),
        p99=quantile(runtimes, 0.99),
        maximum=runtimes[-1],
        tail_weight=tail_mass / total_mass if total_mass else 0.0,
    )

    total_core_minutes = sum(group_core_minutes.values())
    mix = MixCharacterization(
        priority_share={
            priority: len(minutes) / len(trace)
            for priority, minutes in by_priority.items()
        },
        group_load_share={
            group: mass / total_core_minutes
            for group, mass in sorted(group_core_minutes.items())
        }
        if total_core_minutes
        else {},
        restricted_fraction=restricted / len(trace),
        mean_candidate_pools=(
            sum(whitelist_sizes) / len(whitelist_sizes) if whitelist_sizes else 0.0
        ),
    )
    trace_span = (all_minutes[0], all_minutes[-1])
    return TraceCharacterization(
        arrivals_all=_characterize_arrivals(all_minutes, burstiness_window),
        arrivals_by_priority={
            priority: _characterize_arrivals(
                minutes, burstiness_window, span=trace_span
            )
            for priority, minutes in sorted(by_priority.items())
        },
        runtime=runtime,
        mix=mix,
    )
