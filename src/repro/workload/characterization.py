"""Workload characterization: the paper's Section-2 methodology as a toolkit.

The paper's first contribution is "an analysis of job execution traces
... one of the first trace-driven efforts at empirically understanding
the performance characteristics of scheduling policies within a
distributed computing platform".  This module provides the
corresponding measurements over any :class:`~repro.workload.trace.Trace`
— ours or an imported one — so the synthetic generator's output can be
checked against the properties the paper reports (and against any real
trace a user substitutes):

* arrival-process statistics, including windowed burstiness (the Fano
  factor: variance-to-mean ratio of per-window arrival counts; 1 for a
  Poisson process, ≫1 for the bursty high-priority stream);
* runtime-distribution statistics (percentiles, tail weight);
* priority mix and per-business-group load shares;
* pool-affinity breadth (how constrained candidate sets are).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from .distributions import quantile
from .trace import PRIORITY_HIGH, PRIORITY_MEDIUM, Trace, TraceJob

__all__ = [
    "ArrivalCharacterization",
    "RuntimeCharacterization",
    "MixCharacterization",
    "TraceCharacterization",
    "StreamingCharacterizer",
    "characterize",
    "fano_factor",
]


def fano_factor(
    arrival_minutes: List[float],
    window_minutes: float = 60.0,
    span: Optional[Tuple[float, float]] = None,
) -> float:
    """Variance-to-mean ratio of per-window arrival counts.

    1.0 for a homogeneous Poisson process; substantially above 1 for
    bursty arrivals (the paper's high-priority stream).

    ``span`` fixes the observation window; by default it is the
    arrivals' own extent.  When measuring one priority class of a
    longer trace, pass the whole trace's span — a class that arrives
    only in one burst is extremely bursty *over the trace*, even though
    it looks Poisson within the burst itself.
    """
    if window_minutes <= 0:
        raise ConfigurationError("window_minutes must be > 0")
    if not arrival_minutes:
        return 0.0
    if span is None:
        start = min(arrival_minutes)
        end = max(arrival_minutes)
    else:
        start, end = span
        if end < start:
            raise ConfigurationError("span end must be >= start")
    window_count = max(1, int(math.ceil((end - start) / window_minutes)))
    counts = [0] * window_count
    for minute in arrival_minutes:
        index = min(window_count - 1, int((minute - start) // window_minutes))
        counts[index] += 1
    mean = sum(counts) / window_count
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / window_count
    return variance / mean


@dataclass(frozen=True)
class ArrivalCharacterization:
    """Arrival-process statistics for one priority class (or all jobs).

    Attributes:
        job_count: arrivals measured.
        rate_per_minute: mean arrival rate over the span.
        interarrival_cv: coefficient of variation of interarrival gaps
            (1 for Poisson; > 1 indicates clustering).
        fano_factor: windowed burstiness (see :func:`fano_factor`).
    """

    job_count: int
    rate_per_minute: float
    interarrival_cv: float
    fano_factor: float


@dataclass(frozen=True)
class RuntimeCharacterization:
    """Runtime-distribution statistics.

    Attributes:
        mean: mean runtime (minutes).
        median: 50th percentile.
        p90: 90th percentile.
        p99: 99th percentile.
        maximum: longest runtime.
        tail_weight: fraction of total runtime mass contributed by the
            longest 10% of jobs — the heavy-tail signature (0.1 for a
            uniform distribution, larger when tails dominate).
    """

    mean: float
    median: float
    p90: float
    p99: float
    maximum: float
    tail_weight: float


@dataclass(frozen=True)
class MixCharacterization:
    """Composition of the workload.

    Attributes:
        priority_share: priority level -> fraction of jobs.
        group_load_share: user/group -> fraction of total core-minutes.
        restricted_fraction: fraction of jobs with a candidate-pool
            whitelist (ownership/affinity configuration).
        mean_candidate_pools: mean whitelist size over restricted jobs.
    """

    priority_share: Dict[int, float]
    group_load_share: Dict[str, float]
    restricted_fraction: float
    mean_candidate_pools: float


@dataclass(frozen=True)
class TraceCharacterization:
    """Full Section-2-style characterization of a trace."""

    arrivals_all: ArrivalCharacterization
    arrivals_by_priority: Dict[int, ArrivalCharacterization]
    runtime: RuntimeCharacterization
    mix: MixCharacterization

    def render(self) -> str:
        """Human-readable report."""
        lines = ["trace characterization"]
        a = self.arrivals_all
        lines.append(
            f"  arrivals: {a.job_count} jobs, {a.rate_per_minute:.3f}/min, "
            f"interarrival CV {a.interarrival_cv:.2f}, Fano {a.fano_factor:.1f}"
        )
        for priority in sorted(self.arrivals_by_priority):
            p = self.arrivals_by_priority[priority]
            lines.append(
                f"    priority {priority:>3}: {p.job_count} jobs, "
                f"Fano {p.fano_factor:.1f}"
            )
        r = self.runtime
        lines.append(
            f"  runtimes: mean {r.mean:.0f}, median {r.median:.0f}, "
            f"p90 {r.p90:.0f}, p99 {r.p99:.0f}, max {r.maximum:.0f} min; "
            f"top-decile mass {r.tail_weight * 100:.0f}%"
        )
        m = self.mix
        lines.append(
            f"  mix: {m.restricted_fraction * 100:.0f}% pool-restricted "
            f"(mean whitelist {m.mean_candidate_pools:.1f} pools)"
        )
        return "\n".join(lines)


class StreamingCharacterizer:
    """One-pass, constant-memory characterization of a trace *feed*.

    The materialised :func:`characterize` needs the whole trace in
    memory; this is its streaming sibling for real-trace ingestion,
    folding one :class:`~repro.workload.trace.TraceJob` at a time so it
    can ride along a replay (see :meth:`tee`) without breaking the
    constant-memory guarantee.  Memory is O(horizon / window) for the
    burstiness counters plus a fixed-size runtime reservoir — never
    O(jobs).

    The runtime reservoir is a *deterministic stride sample*: it keeps
    every ``stride``-th runtime and doubles the stride each time the
    buffer fills, so the same feed always yields the same percentile
    estimates (no RNG, reproducible across runs and platforms).

    :meth:`check_paper_regime` turns the aggregates into a list of
    plain-language warnings whenever the ingested trace sits outside
    the operating regime the paper's conclusions assume (~40% average
    utilization, a dominant low-priority class, a small bursty
    high-priority stream, heavy-tailed runtimes).
    """

    def __init__(
        self, burstiness_window: float = 60.0, reservoir_size: int = 4096
    ) -> None:
        if burstiness_window <= 0:
            raise ConfigurationError("burstiness_window must be > 0")
        if reservoir_size < 2:
            raise ConfigurationError("reservoir_size must be >= 2")
        self.job_count = 0
        self.first_submit: Optional[float] = None
        self.last_submit: Optional[float] = None
        self.runtime_sum = 0.0
        self.core_minutes = 0.0
        self.max_runtime = 0.0
        self.priority_counts: Dict[int, int] = {}
        self.restricted_count = 0
        self._whitelist_total = 0
        self._window = burstiness_window
        self._window_counts: Dict[int, int] = {}
        self._high_window_counts: Dict[int, int] = {}
        self._reservoir: List[float] = []
        self._reservoir_cap = reservoir_size
        self._stride = 1
        self._since_kept = 0
        self._prev_submit: Optional[float] = None
        self._gap_sum = 0.0
        self._gap_sq_sum = 0.0
        self._gap_count = 0

    def add(self, job: TraceJob) -> None:
        """Fold one job in (jobs must arrive submit-sorted)."""
        if self._prev_submit is not None and job.submit_minute < self._prev_submit:
            raise ConfigurationError(
                f"job {job.job_id}: streaming characterization requires a "
                f"submit-sorted feed ({job.submit_minute} after {self._prev_submit})"
            )
        self.job_count += 1
        if self.first_submit is None:
            self.first_submit = job.submit_minute
        self.last_submit = job.submit_minute
        self.runtime_sum += job.runtime_minutes
        self.core_minutes += job.runtime_minutes * job.cores
        if job.runtime_minutes > self.max_runtime:
            self.max_runtime = job.runtime_minutes
        self.priority_counts[job.priority] = (
            self.priority_counts.get(job.priority, 0) + 1
        )
        if job.candidate_pools is not None:
            self.restricted_count += 1
            self._whitelist_total += len(job.candidate_pools)
        window = int(job.submit_minute // self._window)
        self._window_counts[window] = self._window_counts.get(window, 0) + 1
        if job.priority >= PRIORITY_HIGH:
            self._high_window_counts[window] = (
                self._high_window_counts.get(window, 0) + 1
            )
        if self._prev_submit is not None:
            gap = job.submit_minute - self._prev_submit
            self._gap_sum += gap
            self._gap_sq_sum += gap * gap
            self._gap_count += 1
        self._prev_submit = job.submit_minute
        # Deterministic stride-doubling reservoir.
        if self._since_kept % self._stride == 0:
            self._reservoir.append(job.runtime_minutes)
            if len(self._reservoir) >= self._reservoir_cap:
                self._reservoir = self._reservoir[::2]
                self._stride *= 2
                self._since_kept = -1  # next add() lands on stride boundary
        self._since_kept += 1

    def tee(self, feed: Iterable[TraceJob]) -> Iterator[TraceJob]:
        """Yield ``feed`` unchanged while characterizing it in passing."""
        for job in feed:
            self.add(job)
            yield job

    # -- derived statistics -------------------------------------------------------

    def horizon_minutes(self) -> float:
        """Span from first to last submission (0 until two jobs seen)."""
        if self.first_submit is None or self.last_submit is None:
            return 0.0
        return self.last_submit - self.first_submit

    def mean_runtime(self) -> float:
        return self.runtime_sum / self.job_count if self.job_count else 0.0

    def interarrival_cv(self) -> float:
        """Coefficient of variation of interarrival gaps (streamed)."""
        if self._gap_count == 0:
            return 0.0
        mean = self._gap_sum / self._gap_count
        if mean <= 0:
            return 0.0
        variance = max(0.0, self._gap_sq_sum / self._gap_count - mean * mean)
        return math.sqrt(variance) / mean

    def _fano_over(self, counts: Dict[int, int]) -> float:
        if self.first_submit is None or self.last_submit is None:
            return 0.0
        start = int(self.first_submit // self._window)
        end = int(self.last_submit // self._window)
        window_count = end - start + 1
        total = sum(counts.values())
        mean = total / window_count
        if mean == 0:
            return 0.0
        sq_sum = sum(c * c for c in counts.values())
        # Empty windows contribute (0 - mean)^2 each.
        variance = (
            sq_sum - 2 * mean * total + mean * mean * window_count
        ) / window_count
        return variance / mean

    def fano(self) -> float:
        """Windowed burstiness of the whole arrival stream."""
        return self._fano_over(self._window_counts)

    def high_priority_fano(self) -> float:
        """Windowed burstiness of the HIGH-priority stream alone."""
        return self._fano_over(self._high_window_counts)

    def runtime_quantile(self, q: float) -> float:
        """Percentile estimate from the deterministic reservoir."""
        if not self._reservoir:
            return 0.0
        return quantile(sorted(self._reservoir), q)

    def priority_share(self, floor: int, ceiling: Optional[int] = None) -> float:
        """Fraction of jobs with ``floor <= priority`` (``< ceiling``)."""
        if not self.job_count:
            return 0.0
        matching = sum(
            count
            for priority, count in self.priority_counts.items()
            if priority >= floor and (ceiling is None or priority < ceiling)
        )
        return matching / self.job_count

    def utilization(self, total_cores: int) -> float:
        """Offered load vs a ``total_cores`` cluster over the horizon."""
        if total_cores <= 0:
            raise ConfigurationError("total_cores must be > 0")
        horizon = self.horizon_minutes()
        if horizon <= 0:
            return 0.0
        return self.core_minutes / (total_cores * horizon)

    def check_paper_regime(self, total_cores: int) -> List[str]:
        """Warnings where the feed leaves the paper's operating regime.

        An empty list means the ingested trace is broadly comparable to
        the NetBatch conditions the paper's evaluation assumes; each
        warning names the property, the observed value, and the
        paper-derived expectation it misses.
        """
        warnings: List[str] = []
        if self.job_count == 0:
            return ["trace is empty: nothing was ingested"]
        load = self.utilization(total_cores)
        if load < 0.15:
            warnings.append(
                f"offered load {load:.2f} is far below the paper's ~0.4 average "
                f"utilization; suspensions will be rare and rescheduling moot"
            )
        elif load > 0.85:
            warnings.append(
                f"offered load {load:.2f} overloads the cluster (paper operates "
                f"near 0.4); wait queues will grow without bound"
            )
        high_share = self.priority_share(PRIORITY_HIGH)
        low_share = self.priority_share(0, PRIORITY_MEDIUM)
        if high_share == 0.0:
            warnings.append(
                "no HIGH-priority jobs: nothing can trigger the suspension "
                "bursts the paper's policies exist to mitigate"
            )
        elif high_share > 0.2:
            warnings.append(
                f"HIGH-priority share {high_share:.2f} exceeds the paper's "
                f"small-burst regime (a few percent of jobs)"
            )
        if low_share < 0.5:
            warnings.append(
                f"low-priority share {low_share:.2f} is below 0.5; the paper's "
                f"workload is dominated by suspendable low-priority jobs"
            )
        median = self.runtime_quantile(0.5)
        p90 = self.runtime_quantile(0.9)
        if median > 0 and p90 / median < 3.0:
            warnings.append(
                f"runtime tail is light (p90/median {p90 / median:.1f} < 3); "
                f"NetBatch-like workloads are heavy-tailed"
            )
        if high_share > 0 and self.high_priority_fano() < 2.0:
            warnings.append(
                f"HIGH-priority arrivals look smooth (Fano "
                f"{self.high_priority_fano():.1f} < 2); the paper's high-priority "
                f"stream arrives in bursts"
            )
        return warnings

    def render(self, total_cores: Optional[int] = None) -> str:
        """Human-readable one-pass characterization report."""
        lines = [
            "streaming trace characterization",
            f"  jobs: {self.job_count}, horizon {self.horizon_minutes():.0f} min, "
            f"core-minutes {self.core_minutes:.0f}",
            f"  arrivals: interarrival CV {self.interarrival_cv():.2f}, "
            f"Fano {self.fano():.1f} (high-priority {self.high_priority_fano():.1f})",
            f"  runtimes: mean {self.mean_runtime():.0f}, "
            f"median~{self.runtime_quantile(0.5):.0f}, "
            f"p90~{self.runtime_quantile(0.9):.0f}, max {self.max_runtime:.0f} min",
            f"  mix: high {self.priority_share(PRIORITY_HIGH) * 100:.1f}%, "
            f"medium {self.priority_share(PRIORITY_MEDIUM, PRIORITY_HIGH) * 100:.1f}%, "
            f"restricted {self.restricted_count}/{self.job_count}",
        ]
        if total_cores is not None:
            lines.append(
                f"  offered load vs {total_cores} cores: "
                f"{self.utilization(total_cores):.2f}"
            )
            for warning in self.check_paper_regime(total_cores):
                lines.append(f"  WARNING: {warning}")
        return "\n".join(lines)


def _characterize_arrivals(
    minutes: List[float],
    window_minutes: float,
    span: Optional[Tuple[float, float]] = None,
) -> ArrivalCharacterization:
    count = len(minutes)
    if count < 2:
        return ArrivalCharacterization(
            job_count=count, rate_per_minute=0.0, interarrival_cv=0.0, fano_factor=0.0
        )
    extent = minutes[-1] - minutes[0]
    gaps = [b - a for a, b in zip(minutes, minutes[1:])]
    mean_gap = sum(gaps) / len(gaps)
    if mean_gap > 0:
        variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean_gap
    else:
        cv = 0.0
    return ArrivalCharacterization(
        job_count=count,
        rate_per_minute=count / extent if extent > 0 else 0.0,
        interarrival_cv=cv,
        fano_factor=fano_factor(minutes, window_minutes, span=span),
    )


def characterize(
    trace: Trace, burstiness_window: float = 60.0
) -> TraceCharacterization:
    """Compute the full characterization of ``trace``."""
    if len(trace) == 0:
        raise ConfigurationError("cannot characterize an empty trace")
    all_minutes = [j.submit_minute for j in trace]
    by_priority: Dict[int, List[float]] = {}
    runtimes: List[float] = []
    group_core_minutes: Dict[str, float] = {}
    restricted = 0
    whitelist_sizes: List[int] = []
    for job in trace:
        by_priority.setdefault(job.priority, []).append(job.submit_minute)
        runtimes.append(job.runtime_minutes)
        group_core_minutes[job.user] = (
            group_core_minutes.get(job.user, 0.0)
            + job.runtime_minutes * job.cores
        )
        if job.candidate_pools is not None:
            restricted += 1
            whitelist_sizes.append(len(job.candidate_pools))

    runtimes.sort()
    total_mass = sum(runtimes)
    top_decile_start = int(math.floor(0.9 * len(runtimes)))
    tail_mass = sum(runtimes[top_decile_start:])
    runtime = RuntimeCharacterization(
        mean=total_mass / len(runtimes),
        median=quantile(runtimes, 0.5),
        p90=quantile(runtimes, 0.9),
        p99=quantile(runtimes, 0.99),
        maximum=runtimes[-1],
        tail_weight=tail_mass / total_mass if total_mass else 0.0,
    )

    total_core_minutes = sum(group_core_minutes.values())
    mix = MixCharacterization(
        priority_share={
            priority: len(minutes) / len(trace)
            for priority, minutes in by_priority.items()
        },
        group_load_share={
            group: mass / total_core_minutes
            for group, mass in sorted(group_core_minutes.items())
        }
        if total_core_minutes
        else {},
        restricted_fraction=restricted / len(trace),
        mean_candidate_pools=(
            sum(whitelist_sizes) / len(whitelist_sizes) if whitelist_sizes else 0.0
        ),
    )
    trace_span = (all_minutes[0], all_minutes[-1])
    return TraceCharacterization(
        arrivals_all=_characterize_arrivals(all_minutes, burstiness_window),
        arrivals_by_priority={
            priority: _characterize_arrivals(
                minutes, burstiness_window, span=trace_span
            )
            for priority, minutes in sorted(by_priority.items())
        },
        runtime=runtime,
        mix=mix,
    )
