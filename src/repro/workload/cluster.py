"""Static cluster model: machines, physical pools, sites.

A :class:`ClusterSpec` is the immutable description of the hardware the
simulator emulates — "20 physical pools, each of which contains
hundreds to tens of thousands of machines with varying CPU speed and
memory" (paper, Section 3.1), scaled down by a configurable factor so
experiments run on a laptop.

The spec is pure data; runtime state (free cores, running jobs) lives in
:mod:`repro.simulator.machine` / :mod:`repro.simulator.pool`, which are
built *from* a spec at simulation start.  The one behavioural method
specs provide is the high-load transform the paper uses: "we reduce the
number of compute cores available to each pool by half while keeping
the submitted job trace unchanged" (:meth:`ClusterSpec.with_cores_halved`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import ClusterError
from .distributions import Categorical, RandomStreams, Uniform

__all__ = ["MachineSpec", "PoolSpec", "ClusterSpec", "ClusterTemplate"]


@dataclass(frozen=True)
class MachineSpec:
    """One physical machine.

    Attributes:
        machine_id: unique identifier within the cluster.
        pool_id: the physical pool this machine belongs to.
        cores: number of cores.
        memory_gb: total memory.
        speed_factor: relative CPU speed; a job with ``runtime_minutes``
            of demand completes in ``runtime_minutes / speed_factor``
            minutes of uninterrupted execution on this machine.
        os_family: operating-system family served by this machine.
    """

    machine_id: str
    pool_id: str
    cores: int
    memory_gb: float
    speed_factor: float = 1.0
    os_family: str = "linux"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ClusterError(f"machine {self.machine_id}: cores must be >= 1")
        if self.memory_gb <= 0:
            raise ClusterError(f"machine {self.machine_id}: memory_gb must be > 0")
        if self.speed_factor <= 0:
            raise ClusterError(f"machine {self.machine_id}: speed_factor must be > 0")


@dataclass(frozen=True)
class PoolSpec:
    """One physical pool: a named collection of machines."""

    pool_id: str
    machines: Tuple[MachineSpec, ...]

    def __post_init__(self) -> None:
        if not self.pool_id:
            raise ClusterError("pool_id may not be empty")
        if not self.machines:
            raise ClusterError(f"pool {self.pool_id}: must contain at least one machine")
        for machine in self.machines:
            if machine.pool_id != self.pool_id:
                raise ClusterError(
                    f"machine {machine.machine_id} claims pool {machine.pool_id!r} "
                    f"but is listed under pool {self.pool_id!r}"
                )

    @property
    def total_cores(self) -> int:
        """Sum of cores over all machines in the pool."""
        return sum(m.cores for m in self.machines)

    @property
    def total_memory_gb(self) -> float:
        """Sum of memory over all machines in the pool."""
        return sum(m.memory_gb for m in self.machines)

    def __len__(self) -> int:
        return len(self.machines)


class ClusterSpec:
    """Immutable description of a whole site (a set of physical pools)."""

    def __init__(self, pools: Sequence[PoolSpec]) -> None:
        if not pools:
            raise ClusterError("a cluster must contain at least one pool")
        ids = [p.pool_id for p in pools]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate pool ids: {sorted(ids)}")
        machine_ids: set = set()
        for pool in pools:
            for machine in pool.machines:
                if machine.machine_id in machine_ids:
                    raise ClusterError(f"duplicate machine id: {machine.machine_id}")
                machine_ids.add(machine.machine_id)
        self._pools: Tuple[PoolSpec, ...] = tuple(pools)
        self._by_id: Dict[str, PoolSpec] = {p.pool_id: p for p in self._pools}

    # -- accessors ---------------------------------------------------------

    @property
    def pools(self) -> Tuple[PoolSpec, ...]:
        """The pools, in declaration order (the round-robin order)."""
        return self._pools

    @property
    def pool_ids(self) -> Tuple[str, ...]:
        """Pool ids in declaration order."""
        return tuple(p.pool_id for p in self._pools)

    def pool(self, pool_id: str) -> PoolSpec:
        """Look up a pool by id."""
        try:
            return self._by_id[pool_id]
        except KeyError:
            raise ClusterError(f"unknown pool id: {pool_id!r}") from None

    def __len__(self) -> int:
        return len(self._pools)

    def __iter__(self) -> Iterator[PoolSpec]:
        return iter(self._pools)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClusterSpec) and self._pools == other._pools

    def __repr__(self) -> str:
        return (
            f"ClusterSpec(pools={len(self._pools)}, machines={self.total_machines}, "
            f"cores={self.total_cores})"
        )

    @property
    def total_machines(self) -> int:
        """Number of machines across all pools."""
        return sum(len(p) for p in self._pools)

    @property
    def total_cores(self) -> int:
        """Number of cores across all pools."""
        return sum(p.total_cores for p in self._pools)

    # -- transforms ----------------------------------------------------------

    def with_cores_halved(self) -> "ClusterSpec":
        """The paper's high-load transform: halve every machine's cores.

        Core counts are floored at 1 so small machines stay usable.
        Memory is left unchanged, as the paper only mentions compute
        cores.
        """
        return self.map_machines(lambda m: replace(m, cores=max(1, m.cores // 2)))

    def scaled_cores(self, factor: float) -> "ClusterSpec":
        """Scale every machine's core count by ``factor`` (floor 1)."""
        if factor <= 0:
            raise ClusterError(f"scale factor must be > 0, got {factor}")
        return self.map_machines(
            lambda m: replace(m, cores=max(1, int(round(m.cores * factor))))
        )

    def map_machines(self, transform) -> "ClusterSpec":
        """Apply ``transform`` to every machine, returning a new spec."""
        new_pools = []
        for pool in self._pools:
            new_pools.append(
                PoolSpec(pool.pool_id, tuple(transform(m) for m in pool.machines))
            )
        return ClusterSpec(new_pools)

    def subset(self, pool_ids: Sequence[str]) -> "ClusterSpec":
        """A new cluster containing only the named pools, in given order."""
        return ClusterSpec([self.pool(pid) for pid in pool_ids])


@dataclass(frozen=True)
class ClusterTemplate:
    """Parametric generator of NetBatch-like clusters.

    The template captures the site shape the paper describes: a fixed
    number of pools with skewed sizes (a few large pools that attract
    the high-priority bursts, many medium and small ones), heterogeneous
    machines (varying core count, memory, speed and OS).

    ``size_classes`` maps a class name to ``(pool_count, machine_count)``;
    machine counts are multiplied by ``scale`` (minimum one machine per
    pool), so the same template serves unit tests (tiny scale) and
    benchmark runs (larger scale).

    Attributes:
        size_classes: ordered tuple of ``(class_name, pool_count,
            machines_per_pool)`` triples.
        cores_per_machine: distribution over machine core counts.
        memory_per_machine: distribution over machine memory (GB).
        speed_factor: distribution over machine speed factors.
        os_families: distribution over OS families.
        scale: global multiplier for machines per pool.
    """

    size_classes: Tuple[Tuple[str, int, int], ...] = (
        ("large", 4, 170),
        ("medium", 8, 80),
        ("small", 8, 36),
    )
    cores_per_machine: Categorical = Categorical((4, 8, 16), (0.35, 0.45, 0.2))
    memory_per_machine: Categorical = Categorical(
        (16.0, 32.0, 64.0), (0.45, 0.35, 0.2)
    )
    speed_factor: Uniform = Uniform(0.8, 1.3)
    windows_pool_count: int = 2
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ClusterError(f"scale must be > 0, got {self.scale}")
        if not self.size_classes:
            raise ClusterError("size_classes may not be empty")
        for name, pool_count, machine_count in self.size_classes:
            if pool_count < 0 or machine_count < 1:
                raise ClusterError(
                    f"size class {name!r}: pool_count must be >= 0 and "
                    f"machines_per_pool >= 1"
                )
        if self.windows_pool_count < 0:
            raise ClusterError("windows_pool_count must be >= 0")
        if len(self.size_classes) > 1 and self.windows_pool_count > self.size_classes[1][1]:
            raise ClusterError(
                "windows_pool_count must fit within the second size class"
            )
        if self.windows_pool_count >= self.pool_count():
            raise ClusterError(
                "windows_pool_count must leave at least one linux pool"
            )

    def pool_count(self) -> int:
        """Total number of pools the template will generate."""
        return sum(count for _, count, _ in self.size_classes)

    def build(self, streams: RandomStreams) -> ClusterSpec:
        """Generate a concrete :class:`ClusterSpec`.

        Pool ids are ``pool-00``, ``pool-01``, ... in size-class order
        (large pools first), which is also the round-robin order used by
        the default initial scheduler.
        """
        rng = streams.stream("cluster")
        windows_pools = set(self.windows_pool_ids())
        pools: List[PoolSpec] = []
        pool_index = 0
        for class_name, pool_count, machines_per_pool in self.size_classes:
            scaled = max(1, int(round(machines_per_pool * self.scale)))
            for _ in range(pool_count):
                pool_id = f"pool-{pool_index:02d}"
                os_family = "windows" if pool_id in windows_pools else "linux"
                machines = tuple(
                    self._build_machine(pool_id, machine_index, os_family, rng)
                    for machine_index in range(scaled)
                )
                pools.append(PoolSpec(pool_id=pool_id, machines=machines))
                pool_index += 1
        return ClusterSpec(pools)

    def _build_machine(
        self, pool_id: str, machine_index: int, os_family: str, rng: random.Random
    ) -> MachineSpec:
        return MachineSpec(
            machine_id=f"{pool_id}/m{machine_index:04d}",
            pool_id=pool_id,
            cores=int(self.cores_per_machine.sample(rng)),
            memory_gb=float(self.memory_per_machine.sample(rng)),
            speed_factor=round(self.speed_factor.sample(rng), 3),
            os_family=os_family,
        )

    def windows_pool_ids(self) -> Tuple[str, ...]:
        """Ids of the dedicated Windows pools.

        NetBatch grew out of Windows NT compute farms (the paper cites
        Intel's "High-End Workstation Compute Farms Using Windows NT");
        machines of one OS family are grouped into dedicated pools
        rather than scattered, so an OS-constrained job always has a
        whole pool's worth of eligible machines.  The *last*
        ``windows_pool_count`` pools (smallest size class) are Windows.
        """
        total = self.pool_count()
        return tuple(
            f"pool-{i:02d}" for i in range(total - self.windows_pool_count, total)
        )

    def large_pool_ids(self) -> Tuple[str, ...]:
        """Ids of the pools in the first (largest) size class.

        The workload generator pins high-priority bursts to these pools
        by default, reproducing the paper's observation that
        latency-sensitive jobs are configured to run in specific pools.
        """
        first_class_count = self.size_classes[0][1]
        return tuple(f"pool-{i:02d}" for i in range(first_class_count))
