"""Synthetic NetBatch-like workload generation.

The real input to the paper's evaluation is one year of proprietary
NetBatch traces.  This module produces a synthetic equivalent that
reproduces the three trace properties the paper's findings hinge on:

1. **Two job populations.**  A steady base stream of low/medium
   priority simulation jobs (Poisson arrivals), plus *bursts* of
   high-priority jobs (Markov-modulated arrivals) — "higher priority
   jobs tend to be bursty in nature ... job suspension can spike
   suddenly" (Section 2.3).
2. **Pool affinity of bursts.**  Each burst is pinned to a small set of
   preferred pools ("latency sensitive jobs with high priority are
   usually configured to only run in specific sets of physical pools"),
   which is what causes suspension even at ~40% overall utilization.
3. **Heavy-tailed runtimes.**  Most jobs are short; a Pareto tail
   produces multi-day jobs and the long-tailed suspension-time CDF of
   Figure 2.

The generator is deterministic given a :class:`~repro.workload.distributions.RandomStreams`
seed.  All knobs live in :class:`WorkloadModel`; the calibrated presets
are in :mod:`repro.workload.scenarios`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from .arrivals import BurstProcess, BurstWindow, PoissonProcess
from .distributions import (
    BoundedPareto,
    Categorical,
    Mixture,
    RandomStreams,
    Sampler,
    lognormal_from_median,
)
from .trace import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_MEDIUM,
    Trace,
    TraceJob,
)

__all__ = ["WorkloadModel", "WorkloadGenerator", "generate_trace", "default_runtime_model"]


def default_runtime_model() -> Sampler:
    """The default heavy-tailed runtime distribution (minutes).

    An 80/20 mixture of a log-normal body (median three hours — chip
    simulations are long-running) and a bounded Pareto tail reaching
    7,000 minutes (~five days), echoing the paper's long-tailed runtime
    distribution and its ~570-minute average completion times.  The
    multi-week extreme of the real traces is clipped: at our cluster
    scales an unscaled tail would clog whole pools that production-sized
    pools absorb statistically.
    """
    return Mixture(
        components=(
            lognormal_from_median(180.0, sigma=1.1),
            BoundedPareto(alpha=1.35, low=400.0, high=9000.0),
        ),
        weights=(0.75, 0.25),
    )


def default_burst_runtime_model() -> Sampler:
    """Runtime distribution for high-priority (latency-sensitive) jobs.

    Log-normal with a two-hour median: the bursts are batches of
    turn-around-sensitive simulation jobs, long enough to pin their
    target pools for the burst's duration without flooding the queues
    with tiny jobs.
    """
    return lognormal_from_median(120.0, sigma=1.0)


@dataclass(frozen=True)
class WorkloadModel:
    """Full parameterisation of the synthetic workload.

    Attributes:
        horizon_minutes: length of the submission window.
        base_rate: arrival rate (jobs/minute) of the base stream.
        arrival_process: optional replacement for the homogeneous
            Poisson base stream — any object with
            ``iter_arrivals(horizon, rng)`` (e.g.
            :class:`~repro.workload.arrivals.DiurnalPoissonProcess`);
            when set, ``base_rate`` is ignored for generation but kept
            for documentation.
        burst: burst process for high-priority arrivals.
        burst_pool_choices: pool ids bursts may be pinned to (typically
            the large pools of the cluster).
        burst_pools_per_burst: how many pools each burst targets.
        medium_priority_fraction: fraction of the base stream submitted
            at medium priority (these can preempt low-priority jobs but
            are themselves preemptible by the bursts).
        runtime: runtime sampler for base-stream jobs.
        burst_runtime: runtime sampler for burst jobs.
        memory_gb: distribution of job memory requirements.
        cores: distribution of job core requirements.
        os_families: distribution of job OS requirements; must be
            compatible with the cluster's machines or jobs become
            unschedulable.
        group_pool_sets: optional candidate-pool sets, one per business
            group; Linux base-stream jobs are assigned a group (round
            robin over the sets) and restricted to that group's pools.
            This models NetBatch ownership configuration — each group's
            jobs "only run in specific sets of physical pools" — and is
            what exposes random rescheduling to hot pools.  Windows
            jobs stay unrestricted (OS eligibility already confines
            them to the Windows pools).
        task_size: if > 0, consecutive low-priority jobs are grouped
            into logical tasks of this size (Section 2.2's task model).
        low_priority: numeric low priority level.
        medium_priority: numeric medium priority level.
        high_priority: numeric high (burst) priority level.
        users: user names to attribute base jobs to (round-robin).
    """

    horizon_minutes: float
    base_rate: float
    burst: BurstProcess
    burst_pool_choices: Tuple[str, ...]
    burst_pools_per_burst: int = 3
    arrival_process: Optional[object] = None
    medium_priority_fraction: float = 0.10
    runtime: Sampler = field(default_factory=default_runtime_model)
    burst_runtime: Sampler = field(default_factory=default_burst_runtime_model)
    memory_gb: Categorical = Categorical(
        (1.0, 2.0, 4.0, 8.0, 16.0, 32.0), (0.3, 0.27, 0.22, 0.13, 0.06, 0.02)
    )
    cores: Categorical = Categorical((1, 2, 4), (0.85, 0.12, 0.03))
    os_families: Categorical = Categorical(("linux", "windows"), (0.9, 0.1))
    group_pool_sets: Optional[Tuple[Tuple[str, ...], ...]] = None
    task_size: int = 0
    low_priority: int = PRIORITY_LOW
    medium_priority: int = PRIORITY_MEDIUM
    high_priority: int = PRIORITY_HIGH
    users: Tuple[str, ...] = ("cpu-design", "gpu-design", "validation", "physical-design")

    def __post_init__(self) -> None:
        if self.horizon_minutes <= 0:
            raise ConfigurationError(
                f"horizon_minutes must be > 0, got {self.horizon_minutes}"
            )
        if self.base_rate < 0:
            raise ConfigurationError(f"base_rate must be >= 0, got {self.base_rate}")
        if not 0.0 <= self.medium_priority_fraction <= 1.0:
            raise ConfigurationError(
                f"medium_priority_fraction must be in [0, 1], "
                f"got {self.medium_priority_fraction}"
            )
        if self.burst_pools_per_burst < 1:
            raise ConfigurationError(
                f"burst_pools_per_burst must be >= 1, got {self.burst_pools_per_burst}"
            )
        if not self.burst_pool_choices:
            raise ConfigurationError("burst_pool_choices may not be empty")
        if not self.low_priority < self.medium_priority < self.high_priority:
            raise ConfigurationError(
                "priority levels must satisfy low < medium < high, got "
                f"{self.low_priority}, {self.medium_priority}, {self.high_priority}"
            )
        if self.task_size < 0:
            raise ConfigurationError(f"task_size must be >= 0, got {self.task_size}")
        if self.group_pool_sets is not None:
            if not self.group_pool_sets:
                raise ConfigurationError("group_pool_sets may not be an empty tuple")
            for group_set in self.group_pool_sets:
                if not group_set:
                    raise ConfigurationError("each group pool set needs at least one pool")

    def expected_job_count(self) -> float:
        """Expected total number of jobs (base + burst)."""
        if self.arrival_process is not None:
            base = self.arrival_process.expected_count(self.horizon_minutes)
        else:
            base = self.base_rate * self.horizon_minutes
        return base + self.burst.expected_count(self.horizon_minutes)


class WorkloadGenerator:
    """Generates a :class:`~repro.workload.trace.Trace` from a model.

    Separate named random streams drive base arrivals, burst arrivals,
    runtimes and job attributes, so changing one knob never perturbs
    the realisation of the others (important for controlled ablations).
    """

    def __init__(self, model: WorkloadModel, streams: RandomStreams) -> None:
        self._model = model
        self._streams = streams

    @property
    def model(self) -> WorkloadModel:
        """The model this generator realises."""
        return self._model

    def generate(self) -> Trace:
        """Generate the full trace (base stream plus bursts)."""
        jobs: List[TraceJob] = []
        next_id = 0
        next_id = self._generate_base_stream(jobs, next_id)
        self._generate_bursts(jobs, next_id)
        return Trace(jobs)

    # -- internals -----------------------------------------------------------

    def _generate_base_stream(self, jobs: List[TraceJob], next_id: int) -> int:
        model = self._model
        arrival_rng = self._streams.stream("base-arrivals")
        attr_rng = self._streams.stream("base-attributes")
        runtime_rng = self._streams.stream("base-runtimes")
        process = model.arrival_process or PoissonProcess(rate=model.base_rate)

        task_id: Optional[int] = None
        task_remaining = 0
        next_task_id = 0
        group_count = len(model.group_pool_sets) if model.group_pool_sets else 0
        for submit in process.iter_arrivals(model.horizon_minutes, arrival_rng):
            if attr_rng.random() < model.medium_priority_fraction:
                priority = model.medium_priority
            else:
                priority = model.low_priority
            if model.task_size > 0 and priority == model.low_priority:
                if task_remaining == 0:
                    task_id = next_task_id
                    next_task_id += 1
                    task_remaining = model.task_size
                task_remaining -= 1
                this_task: Optional[int] = task_id
            else:
                this_task = None
            os_family = str(model.os_families.sample(attr_rng))
            candidate_pools: Optional[Tuple[str, ...]] = None
            if group_count and os_family == "linux":
                group = next_id % group_count
                candidate_pools = model.group_pool_sets[group]
                user = f"group-{group:02d}"
            else:
                user = model.users[next_id % len(model.users)]
            jobs.append(
                TraceJob(
                    job_id=next_id,
                    submit_minute=submit,
                    runtime_minutes=max(0.5, model.runtime.sample(runtime_rng)),
                    priority=priority,
                    cores=int(model.cores.sample(attr_rng)),
                    memory_gb=float(model.memory_gb.sample(attr_rng)),
                    os_family=os_family,
                    candidate_pools=candidate_pools,
                    task_id=this_task,
                    user=user,
                )
            )
            next_id += 1
        return next_id

    def _generate_bursts(self, jobs: List[TraceJob], next_id: int) -> int:
        model = self._model
        burst_rng = self._streams.stream("burst-arrivals")
        attr_rng = self._streams.stream("burst-attributes")
        runtime_rng = self._streams.stream("burst-runtimes")

        windows = model.burst.windows(model.horizon_minutes, burst_rng)
        for window in windows:
            target_pools = self._pick_burst_pools(window, attr_rng)
            owner = f"owner-{int(window.start) % 7}"
            for submit in window.arrivals:
                jobs.append(
                    TraceJob(
                        job_id=next_id,
                        submit_minute=submit,
                        runtime_minutes=max(0.5, model.burst_runtime.sample(runtime_rng)),
                        priority=model.high_priority,
                        cores=int(model.cores.sample(attr_rng)),
                        memory_gb=float(model.memory_gb.sample(attr_rng)),
                        # Burst jobs stay on the dominant OS so the pool
                        # pressure concentrates, as in the paper.
                        os_family="linux",
                        candidate_pools=target_pools,
                        task_id=None,
                        user=owner,
                    )
                )
                next_id += 1
        return next_id

    def _pick_burst_pools(
        self, window: BurstWindow, rng: random.Random
    ) -> Tuple[str, ...]:
        """Choose the preferred pools for one burst."""
        model = self._model
        count = min(model.burst_pools_per_burst, len(model.burst_pool_choices))
        return tuple(rng.sample(list(model.burst_pool_choices), count))


def generate_trace(model: WorkloadModel, seed: int) -> Trace:
    """Convenience one-shot: generate a trace from ``model`` and ``seed``."""
    return WorkloadGenerator(model, RandomStreams(seed)).generate()
