"""Calibrated scenario presets.

A :class:`Scenario` bundles everything one experiment needs — a cluster,
a trace, and the knobs derived from the paper's setup.  The presets
below correspond to the paper's evaluation conditions:

* :func:`busy_week` — the paper's main workload: jobs submitted during
  a one-week busy period containing "a typical burst of high-priority
  jobs and as a result, a burst of job suspension" (Section 3.1).
  Used by Tables 1–5 and Figure 3.
* :func:`high_load` — the same trace on a cluster with "the number of
  compute cores available to each pool [reduced] by half" (Tables 2–5).
* :func:`high_suspension` — an engineered trace whose NoRes suspend
  rate is an order of magnitude higher (~14% in the paper's variant),
  used for the in-text high-suspension experiment.
* :func:`year` — a long-horizon trace for the Section-2 analyses
  (Figure 2's suspension-time CDF, Figure 4's utilization/suspension
  time series).
* :func:`smoke` — a tiny deterministic scenario for unit tests.

Every preset takes ``scale`` (machines-per-pool multiplier, with arrival
rates re-derived from the scaled cluster so utilization is preserved)
and ``seed``.  The derivation targets the paper's operating point:
average utilization around 40% and a NoRes suspend rate on the order of
1% during the busy week.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..errors import ConfigurationError
from .arrivals import BurstProcess, DiurnalPoissonProcess
from .cluster import ClusterSpec, ClusterTemplate
from .distributions import RandomStreams
from .generator import WorkloadGenerator, WorkloadModel
from .trace import Trace

__all__ = [
    "Scenario",
    "busy_week",
    "high_load",
    "high_suspension",
    "year",
    "smoke",
    "WEEK_MINUTES",
    "DEFAULT_WAIT_THRESHOLD",
]

#: One week, the paper's busy-period length (86,080 − 76,000 ≈ 10,080).
WEEK_MINUTES = 10_080.0

#: The paper's waiting-time rescheduling threshold: "30 minutes, which is
#: about twice the expected average waiting time in the original system".
DEFAULT_WAIT_THRESHOLD = 30.0


@dataclass(frozen=True)
class Scenario:
    """A ready-to-simulate experiment condition."""

    name: str
    description: str
    cluster: ClusterSpec
    trace: Trace
    seed: int
    wait_threshold: float = DEFAULT_WAIT_THRESHOLD

    def with_cores_halved(self) -> "Scenario":
        """This scenario on the paper's high-load (half-cores) cluster."""
        return replace(
            self,
            name=f"{self.name}+high-load",
            description=f"{self.description} (cores halved)",
            cluster=self.cluster.with_cores_halved(),
        )


def _derive_base_rate(
    cluster: ClusterSpec, model_runtime_mean: float, mean_cores: float, utilization: float
) -> float:
    """Arrival rate that offers ``utilization`` load to ``cluster``."""
    if utilization <= 0:
        raise ConfigurationError(f"utilization target must be > 0, got {utilization}")
    return utilization * cluster.total_cores / (model_runtime_mean * mean_cores)


def _burst_rate_for(
    cluster: ClusterSpec,
    burst_pool_ids: Tuple[str, ...],
    pools_per_burst: int,
    burst_runtime_mean: float,
    mean_cores: float,
    overload: float,
) -> float:
    """Burst arrival rate that overloads a burst's target pools.

    A burst targets ``pools_per_burst`` pools; the rate is chosen so the
    offered load on those pools is ``overload`` times their capacity,
    which forces preemption of the low-priority jobs running there.
    """
    per_pool_cores = sum(cluster.pool(p).total_cores for p in burst_pool_ids) / len(
        burst_pool_ids
    )
    target_capacity = per_pool_cores * pools_per_burst
    return overload * target_capacity / (burst_runtime_mean * mean_cores)


def _build_scenario(
    name: str,
    description: str,
    *,
    scale: float,
    seed: int,
    horizon: float,
    utilization: float,
    burst_gap: float,
    burst_duration: float,
    burst_overload: float,
    pools_per_burst: int,
    burst_pool_class: str = "large",
    medium_fraction: float = 0.10,
    task_size: int = 0,
    first_burst_start: float = None,
    diurnal: bool = False,
) -> Scenario:
    template = ClusterTemplate(scale=scale)
    streams = RandomStreams(seed)
    cluster = template.build(streams)
    group_sets = _business_group_pool_sets(template)

    # Burst targets: the large pools (plus medium ones for the
    # high-suspension scenario, widening the blast radius).
    large = template.large_pool_ids()
    if burst_pool_class == "large":
        burst_choices = large
    elif burst_pool_class == "large+medium":
        medium_count = template.size_classes[1][1]
        first_medium = len(large)
        burst_choices = large + tuple(
            f"pool-{i:02d}" for i in range(first_medium, first_medium + medium_count)
        )
    else:
        raise ConfigurationError(f"unknown burst_pool_class: {burst_pool_class!r}")

    # Assemble the model in two steps: attribute distributions first so
    # their analytic means can drive the rate derivation.
    probe = WorkloadModel(
        horizon_minutes=horizon,
        base_rate=1.0,  # placeholder, replaced below
        burst=BurstProcess(mean_gap=burst_gap, mean_duration=burst_duration, burst_rate=1.0),
        burst_pool_choices=burst_choices,
        burst_pools_per_burst=pools_per_burst,
        medium_priority_fraction=medium_fraction,
        group_pool_sets=group_sets,
        task_size=task_size,
    )
    mean_cores = probe.cores.mean()
    base_rate = _derive_base_rate(cluster, probe.runtime.mean(), mean_cores, utilization)
    burst_rate = _burst_rate_for(
        cluster,
        burst_choices,
        pools_per_burst,
        probe.burst_runtime.mean(),
        mean_cores,
        burst_overload,
    )
    arrival_process = (
        DiurnalPoissonProcess(base_rate=base_rate) if diurnal else None
    )
    model = replace(
        probe,
        base_rate=base_rate,
        arrival_process=arrival_process,
        burst=BurstProcess(
            mean_gap=burst_gap,
            mean_duration=burst_duration,
            burst_rate=burst_rate,
            first_burst_start=first_burst_start,
            first_burst_duration=burst_duration if first_burst_start is not None else None,
        ),
    )
    trace = WorkloadGenerator(model, streams.spawn("workload")).generate()
    return Scenario(
        name=name,
        description=description,
        cluster=cluster,
        trace=trace,
        seed=seed,
    )


def _business_group_pool_sets(template: ClusterTemplate) -> Tuple[Tuple[str, ...], ...]:
    """Candidate-pool sets for eight Linux business groups.

    Each group runs in three of the four large pools, two Linux medium
    pools and one small pool — the NetBatch ownership pattern where a
    group's jobs "only run in specific sets of physical pools".  The
    overlap with the large (burst-target) pools is what makes naive
    random rescheduling risky: a suspended job's alternates are, with
    sizeable probability, other pools the same burst has overwhelmed.
    """
    large_count = template.size_classes[0][1]
    medium_count = template.size_classes[1][1]
    small_count = template.size_classes[2][1]
    windows = set(template.windows_pool_ids())
    large = [f"pool-{i:02d}" for i in range(large_count)]
    medium = [
        f"pool-{i:02d}"
        for i in range(large_count, large_count + medium_count)
        if f"pool-{i:02d}" not in windows
    ]
    small = [
        f"pool-{i:02d}"
        for i in range(large_count + medium_count, large_count + medium_count + small_count)
    ]
    groups = []
    for g in range(8):
        pools = (
            large[g % len(large)],
            large[(g + 1) % len(large)],
            large[(g + 2) % len(large)],
            medium[g % len(medium)],
            medium[(g + 3) % len(medium)],
            small[g % len(small)],
        )
        groups.append(tuple(dict.fromkeys(pools)))
    return tuple(groups)


def busy_week(scale: float = 0.25, seed: int = 2010) -> Scenario:
    """The paper's one-week busy period under normal load.

    One-to-two high-priority bursts land on the large pools mid-week,
    suspending the low-priority jobs running there while the rest of the
    site stays moderately (~40%) utilized.
    """
    return _build_scenario(
        "busy-week",
        "one-week busy period, normal load (~40% utilization)",
        scale=scale,
        seed=seed,
        horizon=WEEK_MINUTES,
        utilization=0.34,
        burst_gap=30000.0,
        burst_duration=1000.0,
        burst_overload=1.05,
        pools_per_burst=4,
        task_size=12,
        first_burst_start=1800.0,
    )


def high_load(scale: float = 0.25, seed: int = 2010) -> Scenario:
    """The busy week re-run on the half-cores cluster (paper Tables 2-5)."""
    return busy_week(scale=scale, seed=seed).with_cores_halved()


def high_suspension(scale: float = 0.25, seed: int = 2010) -> Scenario:
    """An engineered trace with an order-of-magnitude higher suspend rate.

    The paper: "To investigate the performance of rescheduling under
    high suspend rate, we created a job trace that result in a suspend
    rate of 14%."  Here the bursts are longer, more frequent, hotter and
    spread over both large and medium pools, so a much larger share of
    the low-priority population gets preempted at least once.
    """
    return _build_scenario(
        "high-suspension",
        "engineered heavy-burst week with ~10x the baseline suspend rate",
        scale=scale,
        seed=seed,
        horizon=WEEK_MINUTES,
        utilization=0.45,
        burst_gap=400.0,
        burst_duration=180.0,
        burst_overload=2.0,
        pools_per_burst=6,
        burst_pool_class="large+medium",
        task_size=12,
        first_burst_start=300.0,
    )


def year(
    scale: float = 0.06,
    seed: int = 2010,
    horizon: float = 200_000.0,
    diurnal: bool = False,
) -> Scenario:
    """A long-horizon trace for the Section-2 trace analyses.

    Defaults to ~200k minutes (a bit over four months) at small cluster
    scale so the analysis benches finish in minutes; pass
    ``horizon=500_000`` to match the paper's full span.  With
    ``diurnal=True`` the base stream carries day/night and
    weekday/weekend cycles (Figure 4's background texture) instead of
    being a flat Poisson process.
    """
    return _build_scenario(
        "year",
        f"long-horizon ({horizon:.0f} min) trace for Figures 2 and 4",
        scale=scale,
        seed=seed,
        horizon=horizon,
        utilization=0.34,
        burst_gap=8000.0,
        burst_duration=800.0,
        burst_overload=1.05,
        pools_per_burst=4,
        diurnal=diurnal,
    )


def smoke(seed: int = 7) -> Scenario:
    """A tiny deterministic scenario for unit and integration tests.

    A miniature of the calibrated busy week: six pools (three larger,
    three smaller, one of them Windows), a few hundred jobs over three
    simulated days, and one guaranteed moderate burst pinned to two of
    the larger pools — a minority of the cluster, like the paper's
    setting.  Small enough that a full simulation takes well under a
    second.
    """
    template = ClusterTemplate(
        size_classes=(("large", 3, 5), ("small", 3, 3)),
        windows_pool_count=1,
        scale=1.0,
    )
    streams = RandomStreams(seed)
    cluster = template.build(streams)
    burst = BurstProcess(
        mean_gap=1e9,
        mean_duration=400.0,
        burst_rate=1.0,
        first_burst_start=700.0,
        first_burst_duration=400.0,
    )
    probe = WorkloadModel(
        horizon_minutes=4320.0,
        base_rate=1.0,
        burst=burst,
        burst_pool_choices=template.large_pool_ids(),
        burst_pools_per_burst=2,
        task_size=4,
    )
    mean_cores = probe.cores.mean()
    base_rate = _derive_base_rate(cluster, probe.runtime.mean(), mean_cores, 0.34)
    burst_rate = _burst_rate_for(
        cluster, template.large_pool_ids(), 2, probe.burst_runtime.mean(), mean_cores, 1.4
    )
    model = replace(
        probe,
        base_rate=base_rate,
        burst=replace(burst, burst_rate=burst_rate),
    )
    trace = WorkloadGenerator(model, streams.spawn("workload")).generate()
    return Scenario(
        name="smoke",
        description="tiny three-day scenario for tests",
        cluster=cluster,
        trace=trace,
        seed=seed,
    )
