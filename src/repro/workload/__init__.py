"""Workload substrate: traces, clusters, synthetic generation, scenarios.

This package replaces the paper's proprietary inputs — the year-long
NetBatch job traces and the production cluster inventory — with
parametric, seed-reproducible synthetic equivalents.  See DESIGN.md
section 2 for the substitution rationale.
"""

from .arrivals import BurstProcess, BurstWindow, DiurnalPoissonProcess, PoissonProcess
from .characterization import (
    StreamingCharacterizer,
    TraceCharacterization,
    characterize,
    fano_factor,
)
from .cluster import ClusterSpec, ClusterTemplate, MachineSpec, PoolSpec
from .distributions import (
    BoundedPareto,
    Categorical,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    RandomStreams,
    Sampler,
    Uniform,
    lognormal_from_median,
)
from .generator import WorkloadGenerator, WorkloadModel, generate_trace
from .io import (
    cluster_from_json,
    cluster_to_json,
    trace_from_csv,
    trace_from_jsonl,
    trace_to_csv,
    trace_to_jsonl,
)
from .scenarios import (
    DEFAULT_WAIT_THRESHOLD,
    WEEK_MINUTES,
    Scenario,
    busy_week,
    high_load,
    high_suspension,
    smoke,
    year,
)
from .trace import Trace, TraceJob, TraceStats, jobs_by_task
from .traces import (
    GoogleTask,
    SWFJob,
    TraceReplaySpec,
    TraceScenario,
    default_replay_spec,
    generate_google_fixture,
    generate_swf_fixture,
    iter_google_tasks,
    iter_swf_jobs,
    read_swf,
    scenario_from_trace,
    trace_digest,
    write_swf,
)

__all__ = [
    "BurstProcess",
    "BurstWindow",
    "DiurnalPoissonProcess",
    "PoissonProcess",
    "StreamingCharacterizer",
    "TraceCharacterization",
    "characterize",
    "fano_factor",
    "ClusterSpec",
    "ClusterTemplate",
    "MachineSpec",
    "PoolSpec",
    "BoundedPareto",
    "Categorical",
    "Constant",
    "Exponential",
    "LogNormal",
    "Mixture",
    "RandomStreams",
    "Sampler",
    "Uniform",
    "lognormal_from_median",
    "WorkloadGenerator",
    "WorkloadModel",
    "generate_trace",
    "cluster_from_json",
    "cluster_to_json",
    "trace_from_csv",
    "trace_from_jsonl",
    "trace_to_csv",
    "trace_to_jsonl",
    "DEFAULT_WAIT_THRESHOLD",
    "WEEK_MINUTES",
    "Scenario",
    "busy_week",
    "high_load",
    "high_suspension",
    "smoke",
    "year",
    "Trace",
    "TraceJob",
    "TraceStats",
    "jobs_by_task",
    "SWFJob",
    "GoogleTask",
    "TraceReplaySpec",
    "TraceScenario",
    "default_replay_spec",
    "iter_swf_jobs",
    "iter_google_tasks",
    "read_swf",
    "write_swf",
    "scenario_from_trace",
    "trace_digest",
    "generate_swf_fixture",
    "generate_google_fixture",
]
