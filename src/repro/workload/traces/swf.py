"""Standard Workload Format (SWF) streaming adapter.

SWF is the Parallel Workloads Archive's interchange format for real
scheduler logs (Feitelson et al.): one job per line, 18 whitespace-
separated numeric fields, ``;``-prefixed comment/header lines, jobs
ordered by submission time.  Reuther et al. (arXiv:1705.03102) motivate
it as the standard carrier for HPC scheduler traces, which makes it the
natural import path for replaying real logs through this reproduction.

Everything here streams: :func:`iter_swf_jobs` parses one line at a
time and never holds more than one job, so a multi-gigabyte archive
trace replays in constant memory.  :func:`write_swf` emits the same
canonical single-space formatting :mod:`repro.workload.traces.fixtures`
uses, so generated fixtures round-trip **byte-for-byte** through
parse + re-emit (pinned by ``tests/test_traces_swf.py``).

Field reference (1-based, as in the SWF definition):

==  =======================  ==  =======================
 1  job number                10  requested memory (KB)
 2  submit time (s)           11  status
 3  wait time (s)             12  user id
 4  run time (s)              13  group id
 5  allocated processors      14  executable number
 6  average CPU time (s)      15  queue number
 7  used memory (KB)          16  partition number
 8  requested processors      17  preceding job number
 9  requested time (s)        18  think time (s)
==  =======================  ==  =======================

Unknown values are ``-1`` throughout, per the SWF convention.
"""

from __future__ import annotations

import io
from dataclasses import astuple, dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Tuple, Union

from ...errors import TraceError

__all__ = [
    "SWF_FIELD_COUNT",
    "SWFJob",
    "iter_swf_jobs",
    "read_swf",
    "write_swf",
    "format_swf_job",
]

#: An SWF record always carries exactly this many fields.
SWF_FIELD_COUNT = 18

Source = Union[str, Path, IO[str]]

#: SWF status values (field 11).
STATUS_FAILED = 0
STATUS_COMPLETED = 1
STATUS_PARTIAL = 2
STATUS_PARTIAL_FAILED = 3
STATUS_CANCELLED = 5


@dataclass(frozen=True)
class SWFJob:
    """One SWF record; field order matches the on-disk column order."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    avg_cpu_time: float
    used_memory_kb: float
    requested_procs: int
    requested_time: float
    requested_memory_kb: float
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: float


#: Which of the 18 columns are integral (the rest may carry fractions).
_INT_FIELDS = frozenset((0, 4, 7, 10, 11, 12, 13, 14, 15, 16))


def _parse_field(token: str, index: int) -> Union[int, float]:
    if index in _INT_FIELDS:
        return int(token)
    value = float(token)
    # Keep integral values as ints so canonical re-emission preserves
    # the common all-integer SWF encoding byte-for-byte.
    if "." not in token and "e" not in token and "E" not in token:
        return int(token)
    return value


def _format_field(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def format_swf_job(job: SWFJob) -> str:
    """The canonical (single-space separated) SWF line for ``job``."""
    return " ".join(_format_field(v) for v in astuple(job))


def _open(source: Source):
    """``(file, should_close)`` for a path or an already-open stream."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def iter_swf_jobs(source: Source) -> Iterator[SWFJob]:
    """Yield :class:`SWFJob` records from ``source``, one line at a time.

    ``source`` is a path or a text stream.  Comment lines (leading
    ``;``) and blank lines are skipped.  A line with the wrong field
    count or a non-numeric field raises :class:`~repro.errors.TraceError`
    naming the offending line, so a corrupt download fails loudly at
    the bad byte instead of poisoning the replay.
    """
    handle, should_close = _open(source)
    name = getattr(handle, "name", "<swf>")
    try:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(";"):
                continue
            fields = stripped.split()
            if len(fields) != SWF_FIELD_COUNT:
                raise TraceError(
                    f"{name}:{line_number}: SWF line has {len(fields)} "
                    f"fields, expected {SWF_FIELD_COUNT}"
                )
            try:
                values = [
                    _parse_field(token, index) for index, token in enumerate(fields)
                ]
            except ValueError as exc:
                raise TraceError(
                    f"{name}:{line_number}: non-numeric SWF field ({exc})"
                ) from None
            yield SWFJob(*values)
    finally:
        if should_close:
            handle.close()


def read_swf(source: Source) -> Tuple[List[str], List[SWFJob]]:
    """Materialise ``source``: ``(comment lines, jobs)``.

    Comment lines are preserved verbatim (without trailing newlines) so
    a header-commented file written by :func:`write_swf` round-trips
    byte-for-byte.  Convenience for tests and small fixtures — replay
    paths should use the streaming :func:`iter_swf_jobs` instead.
    """
    comments: List[str] = []
    jobs: List[SWFJob] = []
    handle, should_close = _open(source)
    try:
        text = handle.read()
    finally:
        if should_close:
            handle.close()
    buffer = io.StringIO(text)
    for line in buffer:
        stripped = line.rstrip("\n")
        if stripped.lstrip().startswith(";"):
            comments.append(stripped)
    jobs.extend(iter_swf_jobs(io.StringIO(text)))
    return comments, jobs


def write_swf(
    dest: Source, jobs: Iterable[SWFJob], comments: Iterable[str] = ()
) -> int:
    """Write ``comments`` then ``jobs`` in canonical form; returns job count.

    Comment lines are written verbatim (a leading ``;`` is added when
    missing) before the job lines.  Output from ``write_swf(path,
    *read_swf(path)[::-1])`` is byte-identical to a canonical input —
    the round-trip property the fixture tests pin.
    """
    if isinstance(dest, (str, Path)):
        handle: IO[str] = open(dest, "w", encoding="utf-8")
        should_close = True
    else:
        handle, should_close = dest, False
    count = 0
    try:
        for comment in comments:
            if not comment.lstrip().startswith(";"):
                comment = f"; {comment}"
            handle.write(comment + "\n")
        for job in jobs:
            handle.write(format_swf_job(job) + "\n")
            count += 1
    finally:
        if should_close:
            handle.close()
    return count
