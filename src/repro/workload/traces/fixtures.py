"""Synthetic SWF / Google-cluster fixture generation.

Tests and CI must exercise the real-trace ingestion path end to end
without ever downloading a multi-gigabyte archive trace.  These
generators write *synthetic but format-faithful* fixtures: canonical
SWF (byte-round-trippable through :mod:`repro.workload.traces.swf`) and
task_events CSV (event-time ordered, SUBMIT/SCHEDULE/terminal triples,
same 13 columns the published Google trace uses).

Two properties matter beyond format fidelity:

* **Determinism** — a ``(jobs, seed, …)`` tuple always produces the
  same bytes, on every platform, so fixtures can be regenerated in CI
  and digests compared.  Everything derives from one
  :class:`random.Random`; no clocks, no OS entropy.
* **Bounded concurrency** — arrival rates are derived from a target
  cluster size and utilisation (same derivation the scenario presets
  use), so offered load stays below capacity and the streaming
  engine's in-flight set — the thing the CI leg's RSS ceiling actually
  measures — stays O(cluster), not O(trace).

The generators *stream to disk*: one record is formatted and written at
a time, so producing a million-job fixture costs the same memory as a
hundred-job one.
"""

from __future__ import annotations

import heapq
import math
import random
from pathlib import Path
from typing import Dict, Iterator, Union

from .swf import SWFJob, write_swf

__all__ = ["generate_swf_fixture", "generate_google_fixture"]

#: Expected cores per job under the _draw_cores distribution below;
#: used to convert a utilisation target into an arrival rate.
_MEAN_CORES = 0.82 * 1 + 0.13 * 3 + 0.05 * 8


def _draw_cores(rng: random.Random) -> int:
    """Mostly single-core with a small wide-job tail (paper Section 3.1)."""
    roll = rng.random()
    if roll < 0.82:
        return 1
    if roll < 0.95:
        return rng.choice((2, 3, 4))
    return 8


def _draw_runtime_seconds(rng: random.Random, mean_minutes: float) -> int:
    """Lognormal service demand with the requested mean, >= 1 second."""
    sigma = 1.1
    mu = math.log(mean_minutes) - sigma * sigma / 2.0
    return max(1, int(rng.lognormvariate(mu, sigma) * 60.0))


class _PriorityBursts:
    """Queue mix with time-clustered high-priority bursts.

    The paper's busy week contains "a typical burst of high-priority
    jobs and as a result, a burst of job suspension"; a fixture whose
    high-priority stream is smooth Poisson would never exercise that
    regime (and trips the streaming characterizer's burstiness check).
    Outside bursts the mix is ~0.4% high / 9% medium; inside a burst
    window high-priority jumps to 35%.  Burst placement is driven by
    the same ``rng``, so fixtures stay byte-deterministic.
    """

    def __init__(
        self,
        rng: random.Random,
        burst_gap_minutes: float = 1440.0,
        burst_duration_minutes: float = 120.0,
    ) -> None:
        self._rng = rng
        self._gap = burst_gap_minutes
        self._duration = burst_duration_minutes
        self._burst_until = -1.0
        self._next_burst = rng.expovariate(1.0 / burst_gap_minutes)

    def queue_for(self, submit_minute: float) -> int:
        if submit_minute >= self._next_burst:
            self._burst_until = self._next_burst + self._duration
            self._next_burst = self._burst_until + self._rng.expovariate(1.0 / self._gap)
        roll = self._rng.random()
        if submit_minute < self._burst_until:
            if roll < 0.35:
                return 2
            if roll < 0.45:
                return 1
            return 0
        if roll < 0.004:
            return 2
        if roll < 0.09:
            return 1
        return 0


def _arrival_rate_per_minute(
    target_cores: int, utilization: float, mean_runtime_minutes: float
) -> float:
    return utilization * target_cores / (mean_runtime_minutes * _MEAN_CORES)


def generate_swf_fixture(
    path: Union[str, Path],
    jobs: int,
    seed: int = 1,
    *,
    target_cores: int = 1200,
    utilization: float = 0.35,
    mean_runtime_minutes: float = 150.0,
    users: int = 64,
) -> Dict[str, float]:
    """Write a deterministic canonical-SWF fixture; returns summary stats.

    ``target_cores`` and ``utilization`` size the arrival process the
    same way the scenario presets do, so replaying the fixture against
    a cluster of roughly ``target_cores`` cores keeps the in-flight job
    set bounded.  Returns ``{"jobs", "horizon_minutes",
    "core_minutes"}`` computed during generation (no re-read).
    """
    rng = random.Random(seed)
    rate = _arrival_rate_per_minute(target_cores, utilization, mean_runtime_minutes)
    bursts = _PriorityBursts(rng)
    totals = {"jobs": float(jobs), "horizon_minutes": 0.0, "core_minutes": 0.0}

    def emit() -> Iterator[SWFJob]:
        submit_s = 0.0
        for number in range(1, jobs + 1):
            submit_s += rng.expovariate(rate) * 60.0
            run_s = _draw_runtime_seconds(rng, mean_runtime_minutes)
            cores = _draw_cores(rng)
            queue = bursts.queue_for(submit_s / 60.0)
            user = rng.randrange(users)
            mem_kb = rng.randrange(100_000, 4_000_000)
            status = 1 if rng.random() < 0.97 else 0
            totals["horizon_minutes"] = submit_s / 60.0
            totals["core_minutes"] += run_s / 60.0 * cores
            yield SWFJob(
                job_number=number,
                submit_time=int(submit_s),
                wait_time=-1,
                run_time=run_s,
                allocated_procs=cores,
                avg_cpu_time=-1,
                used_memory_kb=mem_kb,
                requested_procs=cores,
                requested_time=int(run_s * 1.2) + 60,
                requested_memory_kb=mem_kb,
                status=status,
                user_id=user,
                group_id=user % 8,
                executable=rng.randrange(1, 40),
                queue=queue,
                partition=1,
                preceding_job=-1,
                think_time=-1,
            )

    comments = (
        "; Synthetic SWF fixture (repro.workload.traces.fixtures)",
        f"; jobs: {jobs}  seed: {seed}  target_cores: {target_cores}"
        f"  utilization: {utilization:g}",
        "; Computer: synthetic NetBatch-like site (not a real archive trace)",
        "; Queues: 0=low 1=medium 2=high priority",
    )
    write_swf(Path(path), emit(), comments)
    return totals


def generate_google_fixture(
    path: Union[str, Path],
    tasks: int,
    seed: int = 1,
    *,
    target_cores: int = 1200,
    utilization: float = 0.35,
    mean_runtime_minutes: float = 150.0,
    users: int = 32,
) -> Dict[str, float]:
    """Write a deterministic task_events CSV fixture; returns summary stats.

    Each task contributes a SUBMIT, a SCHEDULE and a FINISH row; rows
    are emitted globally sorted by event timestamp (the published
    trace's invariant) using a small future-event heap, so memory stays
    bounded by task concurrency while writing.
    """
    rng = random.Random(seed)
    rate = _arrival_rate_per_minute(target_cores, utilization, mean_runtime_minutes)
    bursts = _PriorityBursts(rng)
    totals = {"jobs": float(tasks), "horizon_minutes": 0.0, "core_minutes": 0.0}
    future: list = []  # (timestamp_us, sequence, row)
    seq = 0

    def row(ts_us: int, job_id: int, index: int, event: int, user: str,
            klass: int, priority: int, cpu: float, mem: float) -> str:
        return (
            f"{ts_us},,{job_id},{index},{'' if event == 0 else 4_000_000 + job_id},"
            f"{event},{user},{klass},{priority},{cpu:.5f},{mem:.5f},0.001,0"
        )

    with open(path, "w", encoding="utf-8", newline="") as handle:
        submit_min = 0.0
        for task in range(tasks):
            submit_min += rng.expovariate(rate)
            submit_us = int(submit_min * 60_000_000)
            wait_us = int(rng.expovariate(1.0 / 60.0) * 1_000_000)  # ~1 min mean
            run_s = _draw_runtime_seconds(rng, mean_runtime_minutes)
            schedule_us = submit_us + wait_us
            end_us = schedule_us + run_s * 1_000_000
            queue = bursts.queue_for(submit_min)
            user = f"user-{rng.randrange(users)}"
            cpu = rng.choice((0.0125, 0.025, 0.05))
            mem = rng.choice((0.0062, 0.0124, 0.0311))
            job_id = 6_000_000 + task
            totals["horizon_minutes"] = submit_min
            totals["core_minutes"] += run_s / 60.0

            # Flush every already-generated event at or before this
            # submission so the file stays event-time ordered.
            while future and future[0][0] <= submit_us:
                handle.write(heapq.heappop(future)[2] + "\n")
            handle.write(row(submit_us, job_id, 0, 0, user, queue, queue * 4, cpu, mem) + "\n")
            for ts, event in ((schedule_us, 1), (end_us, 4)):
                heapq.heappush(
                    future,
                    (ts, seq, row(ts, job_id, 0, event, user, queue, queue * 4, cpu, mem)),
                )
                seq += 1
        while future:
            handle.write(heapq.heappop(future)[2] + "\n")
    return totals
