"""Google cluster-trace (task_events) streaming adapter.

The 2011 Google cluster trace ships task lifecycles as a CSV of
*events* — one row per state transition, ordered by event timestamp —
in the ``task_events`` table (13 columns, timestamps in microseconds).
A task's execution is reconstructed by pairing its ``SUBMIT``,
``SCHEDULE`` and terminal (``FINISH``/``FAIL``/``KILL``/``LOST``)
events.  That pairing is the interesting part for constant-memory
replay: a task *finishes* long after it was submitted, so an
event-ordered file cannot be emitted submit-ordered without buffering —
but only the **in-flight** tasks need buffering, never the whole trace.

:func:`iter_google_tasks` does exactly that: it keeps one small entry
per unfinished task plus a heap of finished-but-unemitted tasks, and
releases a finished task only once the *watermark* (the earliest submit
time any still-pending task could complete with) has passed its submit
time.  The yielded stream is therefore sorted by submission time —
the order :func:`repro.simulator.simulation.run_streaming` requires —
while peak memory stays proportional to trace concurrency, not length.

Column reference (``task_events`` schema, 0-based):

==  ============================  ==  ============================
 0  timestamp (microseconds)       7  scheduling class
 1  missing info                   8  priority
 2  job ID                         9  CPU request (fraction)
 3  task index                    10  memory request (fraction)
 4  machine ID                    11  disk space request
 5  event type                    12  different machines restriction
 6  user (opaque hash)
==  ============================  ==  ============================
"""

from __future__ import annotations

import csv
import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Tuple, Union

from ...errors import TraceError

__all__ = [
    "GOOGLE_FIELD_COUNT",
    "GoogleTask",
    "iter_google_tasks",
    "EVENT_SUBMIT",
    "EVENT_SCHEDULE",
    "EVENT_EVICT",
    "EVENT_FAIL",
    "EVENT_FINISH",
    "EVENT_KILL",
    "EVENT_LOST",
]

#: A task_events row always carries exactly this many columns.
GOOGLE_FIELD_COUNT = 13

#: task_events event-type values.
EVENT_SUBMIT = 0
EVENT_SCHEDULE = 1
EVENT_EVICT = 2
EVENT_FAIL = 3
EVENT_FINISH = 4
EVENT_KILL = 5
EVENT_LOST = 6
EVENT_UPDATE_PENDING = 7
EVENT_UPDATE_RUNNING = 8

#: Event types that end a task's lifecycle for replay purposes.  EVICT
#: is *not* terminal: an evicted task is rescheduled and its runtime
#: extends to the eventual terminal event, which matches how the
#: simulator charges suspension/restart time rather than splitting jobs.
_TERMINAL_EVENTS = frozenset((EVENT_FINISH, EVENT_FAIL, EVENT_KILL, EVENT_LOST))

Source = Union[str, Path, IO[str]]


@dataclass(frozen=True)
class GoogleTask:
    """One reconstructed task execution (paired SUBMIT..terminal span)."""

    job_id: int
    task_index: int
    submit_us: int
    schedule_us: int
    end_us: int
    end_event: int
    user: str
    scheduling_class: int
    priority: int
    cpu_request: float
    memory_request: float

    @property
    def runtime_us(self) -> int:
        """Wall-clock from first schedule to terminal event."""
        return self.end_us - self.schedule_us

    @property
    def wait_us(self) -> int:
        """Queueing delay from submission to first schedule."""
        return self.schedule_us - self.submit_us


class _Pending:
    """Mutable per-task state while its lifecycle is still open."""

    __slots__ = (
        "submit_us",
        "schedule_us",
        "user",
        "scheduling_class",
        "priority",
        "cpu_request",
        "memory_request",
    )

    def __init__(
        self,
        submit_us: int,
        user: str,
        scheduling_class: int,
        priority: int,
        cpu_request: float,
        memory_request: float,
    ) -> None:
        self.submit_us = submit_us
        self.schedule_us: Optional[int] = None
        self.user = user
        self.scheduling_class = scheduling_class
        self.priority = priority
        self.cpu_request = cpu_request
        self.memory_request = memory_request


def _float_or(value: str, default: float) -> float:
    return float(value) if value else default


def iter_google_tasks(
    source: Source, stats: Optional[Dict[str, int]] = None
) -> Iterator[GoogleTask]:
    """Yield completed :class:`GoogleTask` spans sorted by submit time.

    ``source`` is a path or text stream of a ``task_events`` CSV (no
    header row, per the trace format).  Rows must be non-decreasing in
    timestamp — the published trace guarantees it, and a violation
    raises :class:`~repro.errors.TraceError` because the watermark
    logic (and any notion of "in-flight") is meaningless without it.

    Tasks still open at end-of-file (submitted or running but never
    terminated inside the captured window) are dropped; pass ``stats``
    to receive ``{"emitted", "dropped_open", "dropped_unscheduled"}``
    counts for reporting.
    """
    pending: Dict[Tuple[int, int], _Pending] = {}
    # Lazy-deletion heap over pending submit times: the top entry is
    # valid only while its key is still pending with the same submit.
    pending_heap: List[Tuple[int, Tuple[int, int]]] = []
    ready: List[Tuple[int, int, GoogleTask]] = []
    seq = 0
    emitted = 0
    dropped_unscheduled = 0

    if isinstance(source, (str, Path)):
        handle: IO[str] = open(source, "r", encoding="utf-8", newline="")
        should_close = True
    else:
        handle, should_close = source, False
    name = getattr(handle, "name", "<task_events>")

    def min_pending_submit() -> Optional[int]:
        while pending_heap:
            submit_us, key = pending_heap[0]
            entry = pending.get(key)
            if entry is not None and entry.submit_us == submit_us:
                return submit_us
            heapq.heappop(pending_heap)
        return None

    try:
        last_ts = None
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) != GOOGLE_FIELD_COUNT:
                raise TraceError(
                    f"{name}:{line_number}: task_events row has {len(row)} "
                    f"columns, expected {GOOGLE_FIELD_COUNT}"
                )
            try:
                ts = int(row[0])
                job_id = int(row[2])
                task_index = int(row[3])
                event_type = int(row[5])
            except ValueError as exc:
                raise TraceError(
                    f"{name}:{line_number}: non-numeric task_events field ({exc})"
                ) from None
            if last_ts is not None and ts < last_ts:
                raise TraceError(
                    f"{name}:{line_number}: task_events timestamps regress "
                    f"({ts} after {last_ts}); the file must be event-time ordered"
                )
            last_ts = ts
            key = (job_id, task_index)

            if event_type == EVENT_SUBMIT:
                # A re-submit after eviction keeps the original entry
                # (and its original submit time).
                if key not in pending:
                    try:
                        entry = _Pending(
                            ts,
                            row[6],
                            int(row[7]) if row[7] else 0,
                            int(row[8]) if row[8] else 0,
                            _float_or(row[9], 0.0),
                            _float_or(row[10], 0.0),
                        )
                    except ValueError as exc:
                        raise TraceError(
                            f"{name}:{line_number}: non-numeric task_events "
                            f"field ({exc})"
                        ) from None
                    pending[key] = entry
                    heapq.heappush(pending_heap, (ts, key))
            elif event_type == EVENT_SCHEDULE:
                entry = pending.get(key)
                if entry is not None and entry.schedule_us is None:
                    entry.schedule_us = ts
            elif event_type in _TERMINAL_EVENTS:
                entry = pending.pop(key, None)
                if entry is None:
                    continue
                if entry.schedule_us is None:
                    # Killed while queued: it never ran, nothing to replay.
                    dropped_unscheduled += 1
                    continue
                task = GoogleTask(
                    job_id=job_id,
                    task_index=task_index,
                    submit_us=entry.submit_us,
                    schedule_us=entry.schedule_us,
                    end_us=ts,
                    end_event=event_type,
                    user=entry.user,
                    scheduling_class=entry.scheduling_class,
                    priority=entry.priority,
                    cpu_request=entry.cpu_request,
                    memory_request=entry.memory_request,
                )
                heapq.heappush(ready, (task.submit_us, seq, task))
                seq += 1
            # EVICT and UPDATE_* rows carry no replay information here.

            # Release every finished task whose submit time the
            # watermark has passed: no still-pending task can produce
            # an earlier-submitted span any more.
            floor = min_pending_submit()
            watermark = ts if floor is None else min(ts, floor)
            while ready and ready[0][0] <= watermark:
                emitted += 1
                yield heapq.heappop(ready)[2]
    finally:
        if should_close:
            handle.close()

    while ready:
        emitted += 1
        yield heapq.heappop(ready)[2]

    if stats is not None:
        stats["emitted"] = emitted
        stats["dropped_open"] = len(pending)
        stats["dropped_unscheduled"] = dropped_unscheduled
