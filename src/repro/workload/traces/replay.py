"""Deterministic mapping from real trace records onto the paper's model.

A raw SWF or Google-cluster log knows nothing about the paper's
ownership structure — sites, physical pools, business groups, the
three-level priority scheme.  :class:`TraceReplaySpec` is the bridge: a
small, declarative, hashable description of how to project a real log
onto that model, so the projection is (a) reproducible from the spec
alone and (b) cheap to fingerprint for the experiment cache.

The mapping is stateless per job and the projections stream: both
:meth:`TraceReplaySpec.replay_swf` and
:meth:`TraceReplaySpec.replay_google` are constant-memory generators of
:class:`~repro.workload.trace.TraceJob` ready to feed
:func:`~repro.simulator.simulation.run_streaming`.  Determinism knobs:

* **window** — replay only jobs submitted inside
  ``[window_start_minutes, window_end_minutes)`` (original clock,
  before rebasing), mirroring the paper's busy-week slice.  Because
  trace feeds are submit-sorted, the replay stops reading the source
  the moment it passes the window's end.
* **stride / max_jobs** — deterministic scale-down: keep every
  ``stride``-th eligible job, stop after ``max_jobs``.
* **priorities** — SWF queue numbers (resp. Google scheduling classes)
  map through an explicit table onto the paper's LOW/MEDIUM/HIGH
  levels.
* **ownership** — users hash (CRC-32, stable across runs and
  machines) onto business-group candidate-pool sets; HIGH-priority
  jobs can instead be pinned to dedicated pools, matching the paper's
  "configured to only run in specific sets of physical pools".

:func:`trace_digest` fingerprints *(file bytes, spec)* with a streamed
SHA-256 so a multi-GB source never has to be re-parsed just to compute
a cache key.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union
from zlib import crc32

from ...errors import TraceError
from ..cluster import ClusterSpec
from ..scenarios import DEFAULT_WAIT_THRESHOLD
from ..trace import PRIORITY_HIGH, PRIORITY_LOW, Trace, TraceJob
from .googlecluster import GoogleTask, iter_google_tasks
from .swf import SWFJob, iter_swf_jobs

__all__ = [
    "TraceReplaySpec",
    "TraceScenario",
    "trace_digest",
    "scenario_from_trace",
    "default_replay_spec",
]

_US_PER_MINUTE = 60_000_000.0
_KB_PER_GB = 1024.0 * 1024.0


@dataclass(frozen=True)
class _MappedJob:
    """Source-agnostic intermediate record (original submit clock)."""

    submit_minute: float
    runtime_minutes: float
    source_key: int  # SWF queue number / Google scheduling class
    cores: int
    memory_gb: float
    user: str


@dataclass(frozen=True)
class TraceReplaySpec:
    """How to project a real trace onto the paper's ownership model.

    All fields are plain immutable values, so a spec is hashable,
    picklable, and JSON-serialisable via :func:`dataclasses.asdict` —
    properties :func:`trace_digest` relies on.

    Attributes:
        window_start_minutes / window_end_minutes: half-open submission
            window on the source's original clock (minutes), applied
            before any rebasing.  ``None`` leaves that side unbounded.
        rebase: shift submissions so the first emitted job lands at
            minute 0 (the engine requires non-negative times; real logs
            rarely start at zero once windowed).
        stride: keep every ``stride``-th window-eligible job (1 = all).
        max_jobs: stop after this many emitted jobs (``None`` = all).
        queue_priorities: ``(source value, priority)`` pairs mapping SWF
            queue numbers — or Google scheduling classes — onto the
            simulator's priority levels.
        default_priority: priority for unmapped source values.
        group_pool_sets: business-group candidate-pool sets; a job's
            user CRC-32-hashes onto one of them.  Empty = unrestricted.
        high_priority_pools: when set, jobs mapped to ``PRIORITY_HIGH``
            are pinned here instead of their group's set.
        swf_statuses: SWF status values to accept (``None`` = any).
        runtime_cap_minutes: clamp runtimes above this (outlier guard).
        min_runtime_minutes: clamp runtimes below this (the simulator
            requires strictly positive service demand).
        cores_cap: clamp per-job core counts (``None`` = unclamped).
        default_memory_gb: memory for records with no usable memory
            field.
        memory_quantum_gb: round every job's memory requirement *up* to
            a multiple of this (0 disables).  Real logs record nearly
            unique byte counts per job; unquantised, every job would
            mint a fresh requirement signature and the simulator's
            signature-keyed eligibility memos (machine, pool, engine)
            would grow linearly with trace length.  Quantising keeps
            the signature set — and therefore replay RSS — bounded by
            the quantum grid, not the trace.
        google_machine_memory_gb: scale for Google's normalised memory
            request (fraction of the largest machine) into GB.
        os_family: OS family stamped on every emitted job.
    """

    window_start_minutes: Optional[float] = None
    window_end_minutes: Optional[float] = None
    rebase: bool = True
    stride: int = 1
    max_jobs: Optional[int] = None
    queue_priorities: Tuple[Tuple[int, int], ...] = ()
    default_priority: int = PRIORITY_LOW
    group_pool_sets: Tuple[Tuple[str, ...], ...] = ()
    high_priority_pools: Optional[Tuple[str, ...]] = None
    swf_statuses: Optional[Tuple[int, ...]] = None
    runtime_cap_minutes: Optional[float] = None
    min_runtime_minutes: float = 1.0 / 60.0
    cores_cap: Optional[int] = None
    default_memory_gb: float = 1.0
    memory_quantum_gb: float = 0.25
    google_machine_memory_gb: float = 64.0
    os_family: str = "linux"

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise TraceError(f"stride must be >= 1, got {self.stride}")
        if self.max_jobs is not None and self.max_jobs < 0:
            raise TraceError(f"max_jobs must be >= 0, got {self.max_jobs}")
        if (
            self.window_start_minutes is not None
            and self.window_end_minutes is not None
            and self.window_end_minutes < self.window_start_minutes
        ):
            raise TraceError(
                f"window end ({self.window_end_minutes}) must be >= "
                f"start ({self.window_start_minutes})"
            )
        if self.min_runtime_minutes <= 0:
            raise TraceError("min_runtime_minutes must be > 0")
        if self.memory_quantum_gb < 0:
            raise TraceError("memory_quantum_gb must be >= 0")
        if self.high_priority_pools is not None and not self.high_priority_pools:
            raise TraceError("high_priority_pools may not be an empty tuple")
        # Cached lookup table; object.__setattr__ because the dataclass
        # is frozen.  Not a field: equality/hash/asdict stay spec-only.
        object.__setattr__(self, "_priority_lookup", dict(self.queue_priorities))

    # -- per-record projection ----------------------------------------------------

    def priority_for(self, source_value: int) -> int:
        """Simulator priority for an SWF queue / Google class value."""
        lookup: Dict[int, int] = getattr(self, "_priority_lookup")
        return lookup.get(source_value, self.default_priority)

    def pools_for(self, user: str, priority: int) -> Optional[Tuple[str, ...]]:
        """Candidate-pool set for ``user`` at ``priority`` (None = any)."""
        if priority >= PRIORITY_HIGH and self.high_priority_pools is not None:
            return self.high_priority_pools
        if not self.group_pool_sets:
            return None
        index = crc32(user.encode("utf-8")) % len(self.group_pool_sets)
        return self.group_pool_sets[index]

    def _clamped_runtime(self, runtime_minutes: float) -> float:
        if self.runtime_cap_minutes is not None:
            runtime_minutes = min(runtime_minutes, self.runtime_cap_minutes)
        return max(runtime_minutes, self.min_runtime_minutes)

    def _clamped_cores(self, cores: int) -> int:
        cores = max(1, cores)
        if self.cores_cap is not None:
            cores = min(cores, self.cores_cap)
        return cores

    def _quantized_memory(self, memory_gb: float) -> float:
        """Snap a raw memory requirement onto the quantum grid (rounding
        up, never below one quantum) so replayed jobs share a bounded
        set of requirement signatures; see ``memory_quantum_gb``."""
        quantum = self.memory_quantum_gb
        if quantum <= 0:
            return max(memory_gb, 1e-6)
        return max(1.0, math.ceil(memory_gb / quantum)) * quantum

    def _map_swf(self, job: SWFJob) -> Optional[_MappedJob]:
        if self.swf_statuses is not None and job.status not in self.swf_statuses:
            return None
        if job.run_time <= 0:
            return None
        cores = self._clamped_cores(
            job.allocated_procs if job.allocated_procs > 0 else job.requested_procs
        )
        # SWF memory fields are per-processor KB averages; fall back from
        # measured to requested to the spec default.
        memory_kb = job.used_memory_kb if job.used_memory_kb > 0 else job.requested_memory_kb
        memory_gb = (
            memory_kb * cores / _KB_PER_GB if memory_kb > 0 else self.default_memory_gb
        )
        return _MappedJob(
            submit_minute=job.submit_time / 60.0,
            runtime_minutes=self._clamped_runtime(job.run_time / 60.0),
            source_key=job.queue,
            cores=cores,
            memory_gb=self._quantized_memory(memory_gb),
            user=f"user-{job.user_id}",
        )

    def _map_google(self, task: GoogleTask) -> Optional[_MappedJob]:
        if task.runtime_us <= 0:
            return None
        memory_gb = (
            task.memory_request * self.google_machine_memory_gb
            if task.memory_request > 0
            else self.default_memory_gb
        )
        return _MappedJob(
            submit_minute=task.submit_us / _US_PER_MINUTE,
            runtime_minutes=self._clamped_runtime(task.runtime_us / _US_PER_MINUTE),
            source_key=task.scheduling_class,
            cores=1,  # Google tasks are single-slot; cpu_request is fractional.
            memory_gb=self._quantized_memory(memory_gb),
            user=task.user or "user-unknown",
        )

    # -- streaming replay ----------------------------------------------------------

    def _replay(self, mapped: Iterator[Optional[_MappedJob]]) -> Iterator[TraceJob]:
        emitted = 0
        eligible = 0
        offset: Optional[float] = None
        for record in mapped:
            if record is None:
                continue
            if (
                self.window_start_minutes is not None
                and record.submit_minute < self.window_start_minutes
            ):
                continue
            if (
                self.window_end_minutes is not None
                and record.submit_minute >= self.window_end_minutes
            ):
                # Feeds are submit-sorted: nothing later can re-enter the
                # window, so stop reading the source entirely.
                break
            index = eligible
            eligible += 1
            if index % self.stride:
                continue
            if offset is None:
                offset = record.submit_minute if self.rebase else 0.0
            priority = self.priority_for(record.source_key)
            yield TraceJob(
                job_id=emitted,
                submit_minute=record.submit_minute - offset,
                runtime_minutes=record.runtime_minutes,
                priority=priority,
                cores=record.cores,
                memory_gb=record.memory_gb,
                os_family=self.os_family,
                candidate_pools=self.pools_for(record.user, priority),
                user=record.user,
            )
            emitted += 1
            if self.max_jobs is not None and emitted >= self.max_jobs:
                return

    def replay_swf(self, source) -> Iterator[TraceJob]:
        """Stream an SWF log as simulator-ready jobs (constant memory)."""
        return self._replay(self._map_swf(job) for job in iter_swf_jobs(source))

    def replay_google(self, source) -> Iterator[TraceJob]:
        """Stream a Google task_events CSV as simulator-ready jobs."""
        return self._replay(
            self._map_google(task) for task in iter_google_tasks(source)
        )

    def replay(self, source, fmt: str) -> Iterator[TraceJob]:
        """Dispatch on ``fmt`` (``"swf"`` or ``"google"``)."""
        if fmt == "swf":
            return self.replay_swf(source)
        if fmt == "google":
            return self.replay_google(source)
        raise TraceError(f"unknown trace format: {fmt!r} (expected 'swf' or 'google')")


def trace_digest(
    path: Union[str, Path], spec: TraceReplaySpec, fmt: str = "swf"
) -> str:
    """Cache identity for *(trace file, replay spec)* without parsing.

    Streams the file's raw bytes through SHA-256 (1 MiB chunks — the
    file is never held in memory) and folds in a canonical JSON
    rendering of the spec plus the format tag.  Two runs share a digest
    iff they replay the same bytes the same way, which is exactly the
    invariant the experiment cache needs.
    """
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1024 * 1024), b""):
            hasher.update(chunk)
    canonical = json.dumps(asdict(spec), sort_keys=True, separators=(",", ":"))
    hasher.update(b"|" + fmt.encode("utf-8") + b"|" + canonical.encode("utf-8"))
    return hasher.hexdigest()


def default_replay_spec(template=None, **overrides) -> TraceReplaySpec:
    """The paper-faithful projection for a :class:`ClusterTemplate`.

    Maps source queue/class 1 → MEDIUM and 2 → HIGH (0 and everything
    else stays LOW, matching the paper's dominant-low-priority mix),
    hashes users onto the eight business-group candidate-pool sets, and
    pins HIGH-priority jobs to the large pools — the pools the paper's
    suspension bursts land on.  Pass ``template=None`` for an
    unrestricted (no ownership) spec; keyword overrides win.
    """
    from ..scenarios import _business_group_pool_sets
    from ..trace import PRIORITY_MEDIUM

    settings = dict(
        queue_priorities=((1, PRIORITY_MEDIUM), (2, PRIORITY_HIGH)),
    )
    if template is not None:
        settings["group_pool_sets"] = _business_group_pool_sets(template)
        settings["high_priority_pools"] = tuple(template.large_pool_ids()[:2])
    settings.update(overrides)
    return TraceReplaySpec(**settings)


@dataclass(frozen=True)
class TraceScenario:
    """A :class:`~repro.workload.scenarios.Scenario`-shaped condition
    built from a real trace.

    Structurally compatible with ``Scenario`` (same field names the
    runner and cache read) plus ``trace_digest``: the experiment cache
    uses the digest as the trace's identity instead of re-fingerprinting
    every materialised job, so cache keys stay O(1) in trace size.
    """

    name: str
    description: str
    cluster: ClusterSpec
    trace: Trace
    seed: int
    wait_threshold: float = DEFAULT_WAIT_THRESHOLD
    trace_digest: Optional[str] = field(default=None, compare=False)


def scenario_from_trace(
    name: str,
    source: Union[str, Path],
    cluster: ClusterSpec,
    spec: TraceReplaySpec,
    fmt: str = "swf",
    *,
    seed: int = 0,
    wait_threshold: float = DEFAULT_WAIT_THRESHOLD,
    description: Optional[str] = None,
) -> TraceScenario:
    """Materialise a windowed replay into a runner-ready scenario.

    This is the bridge between streaming ingestion and the grid
    experiments: the (windowed, strided — hence bounded) slice is
    materialised into a :class:`Trace` for the runner, while the cache
    key comes from :func:`trace_digest` and never touches the jobs.
    Unbounded full-trace runs should use
    :func:`~repro.simulator.simulation.run_streaming` instead.
    """
    digest = trace_digest(source, spec, fmt)
    trace = Trace(list(spec.replay(source, fmt)))
    return TraceScenario(
        name=name,
        description=description
        or f"replay of {Path(source).name} ({fmt}, digest {digest[:12]})",
        cluster=cluster,
        trace=trace,
        seed=seed,
        wait_threshold=wait_threshold,
        trace_digest=digest,
    )
