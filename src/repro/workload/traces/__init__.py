"""Real-trace ingestion: streaming SWF and Google cluster-trace adapters.

This package is the bridge from archived real-world scheduler logs to
the simulator: constant-memory parsers for the two dominant public
formats, a declarative :class:`TraceReplaySpec` that deterministically
projects them onto the paper's ownership model, and synthetic fixture
generators so tests and CI can exercise the whole path without
multi-gigabyte downloads.  See ``docs/traces.md`` for the full story.
"""

from .fixtures import generate_google_fixture, generate_swf_fixture
from .googlecluster import GoogleTask, iter_google_tasks
from .replay import (
    TraceReplaySpec,
    TraceScenario,
    default_replay_spec,
    scenario_from_trace,
    trace_digest,
)
from .swf import SWFJob, format_swf_job, iter_swf_jobs, read_swf, write_swf

__all__ = [
    "SWFJob",
    "iter_swf_jobs",
    "read_swf",
    "write_swf",
    "format_swf_job",
    "GoogleTask",
    "iter_google_tasks",
    "TraceReplaySpec",
    "TraceScenario",
    "default_replay_spec",
    "scenario_from_trace",
    "trace_digest",
    "generate_swf_fixture",
    "generate_google_fixture",
]
