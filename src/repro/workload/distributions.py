"""Random-variate samplers and named random streams.

The workload generator and the stochastic rescheduling policies draw
every random number from a seeded :class:`random.Random` instance, so a
given seed reproduces a trace (and a simulation) bit-for-bit.  To keep
the streams independent of each other — adding a draw to one component
must not perturb another — each component obtains its own named child
stream from :class:`RandomStreams`.

The sampler classes implement a tiny common protocol::

    value = sampler.sample(rng)

where ``rng`` is a :class:`random.Random`.  Samplers are immutable value
objects: they carry parameters, never state, which makes them safe to
share between generators and trivial to compare in tests.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "RandomStreams",
    "Sampler",
    "Constant",
    "Uniform",
    "Exponential",
    "LogNormal",
    "BoundedPareto",
    "Mixture",
    "Categorical",
    "lognormal_from_median",
]


class RandomStreams:
    """A family of independent, reproducible random streams.

    Child streams are derived from a root seed and a stream name by
    hashing, so the mapping ``(seed, name) -> stream`` is stable across
    processes and Python versions (it does not rely on ``hash()``,
    which is salted).

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> a = streams.stream("arrivals")
        >>> b = streams.stream("runtimes")
        >>> a is not b
        True
        >>> streams.stream("arrivals") is a   # memoised
        True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict = {}

    @property
    def seed(self) -> int:
        """The root seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) child stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a new independent family derived from this one.

        Useful when a component needs a whole sub-family of streams
        (e.g. one per pool) without colliding with sibling components.
        """
        digest = hashlib.sha256(f"{self._seed}:family:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


class Sampler:
    """Abstract base for immutable random-variate samplers."""

    def sample(self, rng: random.Random) -> float:
        """Draw one variate using ``rng`` as the entropy source."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean of the distribution (for calibration)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Sampler):
    """Degenerate distribution: always returns ``value``."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Sampler):
    """Continuous uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigurationError(f"Uniform: high ({self.high}) < low ({self.low})")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Exponential(Sampler):
    """Exponential distribution parameterised by its mean."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ConfigurationError(f"Exponential: mean must be > 0, got {self.mean_value}")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class LogNormal(Sampler):
    """Log-normal distribution with log-space parameters ``mu``/``sigma``.

    The median is ``exp(mu)`` and the mean is
    ``exp(mu + sigma**2 / 2)``; use :func:`lognormal_from_median` to
    construct one from those quantities directly.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"LogNormal: sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def median(self) -> float:
        """Analytic median, ``exp(mu)``."""
        return math.exp(self.mu)


def lognormal_from_median(median: float, sigma: float) -> LogNormal:
    """Build a :class:`LogNormal` from its median and log-space sigma."""
    if median <= 0:
        raise ConfigurationError(f"lognormal median must be > 0, got {median}")
    return LogNormal(mu=math.log(median), sigma=sigma)


@dataclass(frozen=True)
class BoundedPareto(Sampler):
    """Pareto distribution truncated to ``[low, high]``.

    This is the standard model for heavy-tailed batch-job runtimes: most
    jobs are short, a small fraction run for days.  ``alpha`` is the
    tail index; smaller values give heavier tails.
    """

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError(f"BoundedPareto: alpha must be > 0, got {self.alpha}")
        if not 0 < self.low < self.high:
            raise ConfigurationError(
                f"BoundedPareto: need 0 < low < high, got low={self.low} high={self.high}"
            )

    def sample(self, rng: random.Random) -> float:
        # Inverse-transform sampling of the truncated Pareto CDF.
        u = rng.random()
        la = self.low**self.alpha
        ha = self.high**self.alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.low, self.high
        if math.isclose(a, 1.0):
            return lo * math.log(hi / lo) / (1.0 - lo / hi)
        num = lo**a / (1.0 - (lo / hi) ** a)
        return num * a / (a - 1.0) * (1.0 / lo ** (a - 1.0) - 1.0 / hi ** (a - 1.0))


@dataclass(frozen=True)
class Mixture(Sampler):
    """Finite mixture of component samplers with given weights."""

    components: Tuple[Sampler, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ConfigurationError("Mixture: components and weights must have equal length")
        if not self.components:
            raise ConfigurationError("Mixture: at least one component required")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ConfigurationError("Mixture: weights must be non-negative and sum > 0")

    def sample(self, rng: random.Random) -> float:
        (component,) = rng.choices(self.components, weights=self.weights, k=1)
        return component.sample(rng)

    def mean(self) -> float:
        total = sum(self.weights)
        return sum(w / total * c.mean() for c, w in zip(self.components, self.weights))


@dataclass(frozen=True)
class Categorical:
    """Weighted choice over arbitrary (hashable or not) values.

    Unlike the numeric samplers this returns one of ``values`` verbatim,
    so it is used for machine core counts, OS families and similar
    discrete attributes.
    """

    values: Tuple
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ConfigurationError("Categorical: values and weights must have equal length")
        if not self.values:
            raise ConfigurationError("Categorical: at least one value required")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ConfigurationError("Categorical: weights must be non-negative and sum > 0")

    def sample(self, rng: random.Random):
        (value,) = rng.choices(self.values, weights=self.weights, k=1)
        return value

    def mean(self) -> float:
        """Weighted mean of the values (requires numeric values)."""
        total = sum(self.weights)
        return sum(w / total * v for v, w in zip(self.values, self.weights))


def empirical_mean(sampler: Sampler, rng: random.Random, draws: int = 10000) -> float:
    """Monte-Carlo estimate of a sampler's mean (testing/calibration aid)."""
    if draws <= 0:
        raise ConfigurationError(f"draws must be > 0, got {draws}")
    return sum(sampler.sample(rng) for _ in range(draws)) / draws


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence.

    Shared helper used by calibration code and by the metrics package;
    ``q`` must be in ``[0, 1]``.
    """
    if not sorted_values:
        raise ConfigurationError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile q must be in [0, 1], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    low_value = float(sorted_values[lower])
    high_value = float(sorted_values[upper])
    # a + f*(b-a) rather than a*(1-f) + b*f: the latter can exceed the
    # bounds by one ulp when a == b, which breaks range invariants.
    return low_value + fraction * (high_value - low_value)
