"""CI smoke gate for the distributed experiment fabric.

The fabric's contract, asserted end to end with real worker
subprocesses:

1. **Sharded == serial.** A 2-worker subprocess fleet racing the smoke
   grid through the lease protocol must produce per-cell summaries
   bit-identical to the serial run — same digests, same derived seeds.
2. **Work actually distributes.** Both workers claim and compute cells
   (no silent fallback to one worker doing everything), and every cell
   is computed exactly once across the fleet.
3. **Warm cache short-circuits the fleet.** A rerun against the
   populated cache resolves every cell as a hit during the
   coordinator's pre-scan; no worker computes anything.

``scripts/ci.sh fabric`` runs this file plus the grid regression gate
(``scripts/bench_record.py --grid --check --quick``).
"""

from __future__ import annotations

from repro.experiments.cache import ResultCache, stable_hash
from repro.experiments.parallel import run_grid_parallel
from repro.fabric import SubprocessWorkerBackend, build_grid, run_grid_fabric

from conftest import banner, run_once


def digests(report):
    return [stable_hash(o.summary) for o in report.completed]


def test_sharded_fleet_matches_serial(benchmark, tmp_path):
    tasks = build_grid("smoke")
    serial = run_grid_parallel(tasks, n_workers=1)

    fabric = run_once(
        benchmark,
        run_grid_fabric,
        build_grid("smoke"),
        SubprocessWorkerBackend(2, poll_interval=0.05),
        ResultCache(tmp_path),
        poll_interval=0.05,
    )

    totals = dict(fabric.worker_totals)
    print(banner("CI fabric smoke: smoke grid, serial vs 2-worker fleet"))
    print(
        f"cells: {len(tasks)}   provenance: {fabric.provenance_counts()}   "
        f"fleet: {totals}"
    )
    assert fabric.ok
    assert digests(fabric) == digests(serial), (
        "2-worker fabric run diverged from serial — the lease protocol "
        "or per-cell seeding broke"
    )
    assert [o.seed for o in fabric.completed] == [
        o.seed for o in serial.completed
    ]
    assert totals["computed"] == len(tasks), (
        f"fleet computed {totals['computed']} cells for a {len(tasks)}-cell "
        "grid — cells were duplicated or lost"
    )
    assert totals["failed"] == 0

    # warm rerun: the coordinator's pre-scan must resolve everything
    rerun = run_grid_fabric(
        build_grid("smoke"),
        SubprocessWorkerBackend(2, poll_interval=0.05),
        ResultCache(tmp_path),
        poll_interval=0.05,
    )
    assert rerun.provenance_counts() == {"cache_hit": len(tasks)}
    assert digests(rerun) == digests(serial)


def test_static_sharding_covers_the_grid(benchmark, tmp_path):
    from repro.fabric import shard_tasks

    tasks = build_grid("smoke")
    serial = run_grid_parallel(tasks, n_workers=1)
    by_index = {}

    def run_shards():
        for shard_id in range(2):
            report = run_grid_parallel(
                shard_tasks(build_grid("smoke"), shard_id, 2),
                n_workers=1,
                cache=ResultCache(tmp_path / f"shard{shard_id}"),
            )
            for outcome in report.completed:
                by_index[outcome.index] = outcome
        return by_index

    run_once(benchmark, run_shards)
    print(banner("CI fabric smoke: static 2-way sharding, no coordination"))
    print(f"cells: {len(tasks)}   covered: {len(by_index)}")
    assert sorted(by_index) == [t.index for t in tasks]
    for outcome in serial.completed:
        assert stable_hash(by_index[outcome.index].summary) == stable_hash(
            outcome.summary
        ), f"shard cell {outcome.index} diverged from serial"
