"""CI policies gate: the invariants the policy registry promises.

1. **Registry == direct construction.** The paper baselines addressed
   through spec strings (``"NoRes"``, ``"ResSusUtil"``, ...) must be
   bit-identical to the same grid built from the core factories — the
   registry adds an addressing layer, never a behaviour change.
2. **New families are deterministic.** A fractional-vs-baseline smoke
   grid (``NoRes`` against ``dfrs:share=0.5,floor=0.1``) run twice
   must produce identical seeds and summaries, pinning the determinism
   of the EXPERIMENTS.md fractional comparison.

CI runs this file from ``scripts/ci.sh policies``; it holds at any
scale.
"""

from __future__ import annotations

import repro
from repro.core.policies import no_res, res_sus_util, res_sus_wait_util
from repro.experiments.runner import ExperimentRunner

from conftest import banner, run_once

BASELINE_SPECS = ("NoRes", "ResSusUtil", "ResSusWaitUtil")
FRACTIONAL_SPECS = ("NoRes", "dfrs:share=0.5,floor=0.1")


def _cell_key(cell):
    return (cell.scenario_name, cell.policy_name, cell.scheduler_name, cell.seed, cell.summary)


def test_registry_baselines_match_direct(benchmark):
    scenario = repro.smoke(seed=7)
    direct_factories = (
        no_res,
        res_sus_util,
        lambda: res_sus_wait_util(scenario.wait_threshold),
    )
    direct = ExperimentRunner().run([scenario], direct_factories)
    registry = run_once(
        benchmark, ExperimentRunner().run, [scenario], BASELINE_SPECS
    )
    print(banner("CI policies: registry specs vs direct factories"))
    for cell in registry:
        print(f"  {cell.policy_name:<16} spec={cell.policy_spec!r}  avg_st={cell.summary.avg_st:.1f}")
    assert [_cell_key(c) for c in registry] == [_cell_key(c) for c in direct], (
        "registry-routed baselines diverged from direct construction"
    )
    assert [c.policy_spec for c in registry] == list(BASELINE_SPECS)


def test_fractional_grid_deterministic(benchmark):
    scenario = repro.smoke(seed=7)

    def fractional_grid():
        return ExperimentRunner().run([scenario], FRACTIONAL_SPECS)

    first = fractional_grid()
    second = run_once(benchmark, fractional_grid)
    print(banner("CI policies: NoRes vs dfrs smoke grid, twice"))
    by_name = {c.policy_name: c.summary for c in first}
    for name, summary in by_name.items():
        print(f"  {name:<28} avg_st={summary.avg_st:.1f}  suspend_rate={summary.suspend_rate:.2%}")
    assert [c.seed for c in first] == [c.seed for c in second], (
        "same-seed fractional grid produced different cell seeds"
    )
    assert [c.summary for c in first] == [c.summary for c in second], (
        "same-seed fractional grid produced different summaries"
    )
    dfrs_name = next(n for n in by_name if n.startswith("DFRS["))
    assert by_name[dfrs_name].avg_restarts == 0, (
        "fractional sharing must never restart a job"
    )
