"""Paper Figure 4: suspension and utilization over a long horizon.

Per-minute samples aggregated to 100-minute windows, as in the paper.
Paper observations reproduced as assertions:

1. overall utilization averages ~40% and typically ranges 20-60%;
2. suspension is bursty — the peak windowed suspended-job count is far
   above the median window;
3. suspension arises even when the system is underutilized (most
   windows with suspended jobs sit below 60% utilization).
"""

from repro.experiments import figures

from conftest import banner, run_once


def test_figure4(benchmark):
    figure = run_once(benchmark, figures.figure4)
    print(banner("Figure 4: suspension (# jobs) and utilization (%) over the horizon"))
    print(figure.render())
    analysis = figure.analysis
    # observation 1: moderate average utilization
    assert 20.0 < analysis.mean_utilization_pct < 60.0
    # observation 2: suspension spikes
    series = analysis.suspension_series()
    median_window = sorted(series)[len(series) // 2]
    assert analysis.peak_suspended_jobs > max(4.0 * median_window, 5.0)
    # observation 3: suspension co-exists with an underutilized system
    assert analysis.suspension_while_underutilized > 0.5
