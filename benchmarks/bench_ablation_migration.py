"""Ablation: checkpoint/VM migration under virtualisation overheads.

The paper (Section 2.3) rejects migration for NetBatch because "running
chip simulation workloads ... on visualized hosts often lead to
performance overhead between 10% to 20%", while noting rescheduling
"complements ... a restart strategy or VM migration method".  This
bench measures the crossover: migration preserves progress (no restart
waste) but dilates the remaining work, so its advantage over restart
shrinks as the dilation grows.
"""

from repro.experiments import ablations
from repro.metrics.report import render_table

from conftest import banner, run_once


def test_migration_ablation(benchmark):
    summaries = run_once(benchmark, ablations.migration_ablation)
    print(banner("Ablation: migration dilation sweep (MigSusUtil, high load)"))
    ordered = [summaries[k] for k in sorted(summaries)]
    print(render_table(ordered, ""))
    free = summaries[0.0]
    paper_range = summaries[0.15]
    print(
        f"\nAvgCT(susp): lossless migration {free.avg_ct_suspended:.0f}, "
        f"with the paper's ~15% virtualisation penalty "
        f"{paper_range.avg_ct_suspended:.0f}"
    )
    # dilation adds work, so rescheduling waste cannot shrink with it
    assert paper_range.waste.resched_time >= free.waste.resched_time
    # even at the paper's penalty, migrating beats staying suspended
    from repro.experiments import tables

    no_res = tables.table2().baseline()
    assert paper_range.avg_ct_suspended < no_res.avg_ct_suspended
