"""Ablation: restart overhead sensitivity.

The paper's evaluation restarts jobs instantaneously and flags
"network delays and other rescheduling associated overheads" as a
planned simulator improvement; it also warns that "frequent restarts
may not be desirable since each restart operation may include time
consuming operations like transferring large amount of data".  This
bench quantifies that: ResSusUtil under growing per-restart delays,
showing where rescheduling's benefit erodes.
"""

from repro.experiments import ablations
from repro.metrics.report import render_table

from conftest import banner, run_once


def test_overhead_sweep(benchmark):
    summaries = run_once(benchmark, ablations.overhead_sweep)
    print(banner("Ablation: restart overhead sweep (ResSusUtil, high load)"))
    ordered = [summaries[k] for k in sorted(summaries)]
    print(render_table(ordered, ""))
    free = summaries[0.0]
    worst = summaries[max(summaries)]
    print(
        f"\nAvgCT(susp): free restarts {free.avg_ct_suspended:.0f} -> "
        f"+{max(summaries):.0f}min restarts {worst.avg_ct_suspended:.0f}"
    )
    # overheads cannot make suspended jobs finish sooner
    assert worst.avg_ct_suspended >= free.avg_ct_suspended * 0.95
