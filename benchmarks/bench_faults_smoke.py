"""CI fault smoke: the invariants the robustness layer promises.

1. **Faulty runs are reproducible.** The same seed and the same
   `FaultConfig` must produce byte-identical records and fault
   counters across two fresh engine runs.
2. **Parallel == serial under faults.** A fault-enabled experiment
   grid on a 2-process pool must be bit-identical to the serial run,
   exactly like the zero-fault grids in ``bench_ci_smoke.py``.
3. **Worker death is survived.** A grid containing a cell whose worker
   process is forcibly killed mid-simulation must retry that cell and
   still complete every cell.

CI runs this file from ``scripts/ci.sh smoke``; it holds at any scale.
"""

from __future__ import annotations

import os

import repro
from repro.experiments.parallel import make_cell_task, run_grid_parallel
from repro.faults import FaultConfig
from repro.schedulers.initial import RoundRobinScheduler
from repro.simulator.config import SimulationConfig

from conftest import banner, run_once

CHURN = FaultConfig.with_exponential_churn(3000.0, 60.0)


def _fault_config() -> SimulationConfig:
    return SimulationConfig(strict=False, faults=CHURN)


def _record_key(record):
    return (
        record.job_id,
        record.finish_minute,
        record.wait_time,
        record.suspend_time,
        record.restart_count,
        record.machine_failures,
        record.transient_failures,
        record.failed,
    )


def test_fault_run_deterministic(benchmark):
    scenario = repro.smoke(seed=7)

    def faulty_run():
        return repro.run_simulation(
            scenario.trace, scenario.cluster, config=_fault_config()
        )

    first = faulty_run()
    second = run_once(benchmark, faulty_run)
    print(banner("fault smoke: same-seed churn run, twice"))
    stats = first.fault_stats
    print(
        f"crashes: {stats.machine_crashes}, attempts killed: "
        f"{stats.attempts_killed}, lost work: {stats.lost_work_minutes:.0f} min, "
        f"goodput: {stats.goodput_fraction:.1%}"
    )
    assert stats.machine_crashes > 0, "churn injected no crashes at smoke scale"
    assert [_record_key(r) for r in second.records] == [
        _record_key(r) for r in first.records
    ], "same-seed fault run diverged — fault streams are not deterministic"
    assert second.fault_stats == first.fault_stats


def _fault_grid_tasks():
    scenario = repro.smoke(seed=7)
    config = _fault_config()
    policies = [repro.no_res(), repro.res_sus_util()]
    return [
        make_cell_task(i, scenario, policy, RoundRobinScheduler(), config)
        for i, policy in enumerate(policies)
    ]


def test_fault_grid_parallel_matches_serial(benchmark):
    serial = run_grid_parallel(_fault_grid_tasks(), n_workers=1)
    parallel = run_once(
        benchmark, run_grid_parallel, _fault_grid_tasks(), n_workers=2
    )
    print(banner("fault smoke: fault-enabled grid, serial vs 2-worker pool"))
    for outcome in parallel.outcomes:
        print(f"{outcome.policy_name:12s} AvgCT {outcome.summary.avg_ct_all:8.1f}")
    assert [o.summary for o in parallel.outcomes] == [
        o.summary for o in serial.outcomes
    ], "fault-enabled grid diverged between serial and parallel execution"


class CrashOnceScheduler(RoundRobinScheduler):
    """Kills its worker process on the first run; behaves after that."""

    name = "CrashOnce"

    def __init__(self, marker: str) -> None:
        super().__init__()
        self._marker = marker

    def order(self, candidates, view):
        if not os.path.exists(self._marker):
            with open(self._marker, "w"):
                pass
            os._exit(42)
        return super().order(candidates, view)


def test_worker_crash_is_retried(benchmark, tmp_path):
    scenario = repro.smoke(seed=7)
    config = _fault_config()
    marker = str(tmp_path / "crashed-once")

    def build_tasks():
        schedulers = [
            RoundRobinScheduler(),
            CrashOnceScheduler(marker),
        ]
        return [
            make_cell_task(i, scenario, repro.no_res(), scheduler, config)
            for i, scheduler in enumerate(schedulers)
        ]

    def crash_and_recover():
        if os.path.exists(marker):
            os.unlink(marker)
        return run_grid_parallel(
            build_tasks(), n_workers=2, max_attempts=3, retry_backoff=0.01
        )

    report = run_once(benchmark, crash_and_recover)
    print(banner("fault smoke: grid survives a worker kill"))
    print(
        f"cells completed: {len(report.completed)}/2, "
        f"crash marker present: {os.path.exists(marker)}"
    )
    assert report.ok, "grid did not recover from the worker kill"
    assert len(report.completed) == 2
    assert os.path.exists(marker), "the crashing cell never actually crashed"
