"""Ablation: the alternate-pool selector family.

The paper's future work proposes combining "multiple metrics (e.g.,
utilization, queue lengths, prediction of job completion times within a
pool)".  This bench runs the combined suspended+waiting policy with
every selector in the family and prints the resulting table, with the
NoRes baseline first.
"""

from repro.experiments import ablations
from repro.metrics.report import render_table

from conftest import banner, run_once


def test_selector_ablation(benchmark):
    comparison = run_once(benchmark, ablations.selector_ablation)
    print(banner("Ablation: alternate-pool selectors (high load, RR initial)"))
    print(render_table(list(comparison.summaries), ""))
    baseline = comparison.baseline()
    improvements = {
        s.policy_name: baseline.avg_wct - s.avg_wct
        for s in comparison.summaries[1:]
    }
    best = max(improvements, key=improvements.get)
    print(f"\nlargest AvgWCT improvement: {best} ({improvements[best]:+.1f} min/job)")
    # every selector should improve on the baseline in this regime
    assert all(s.avg_wct < baseline.avg_wct for s in comparison.summaries[1:])
