"""Paper Table 2: suspended-job rescheduling under high load, RR initial.

High load = the busy-week trace on a cluster with every machine's cores
halved.  Paper values (minutes):

=============  ========  ===========  ==========  ======  ======
Strategy       SuspRate  AvgCT(susp)  AvgCT(all)  AvgST   AvgWCT
=============  ========  ===========  ==========  ======  ======
NoRes          1.26%     5846.1       988.7       4402.4  450.1
ResSusUtil     1.83%     1475.1       962.2       86.2    423.9
ResSusRand     1.60%     6485.0       1180.0      73.2    636.3
=============  ========  ===========  ==========  ======  ======

Shape checks: AvgCT(all) roughly doubles versus Table 1's normal load;
ResSusUtil's suspended-job benefit is amplified; ResSusRand backfires.
"""

from repro.experiments import tables

from conftest import banner, run_once


def test_table2(benchmark):
    comparison = run_once(benchmark, tables.table2)
    print(banner("Table 2: suspended-job rescheduling, high load, RR initial"))
    print(tables.render(comparison, ""))
    util_gain = comparison.avg_ct_suspended_reduction("ResSusUtil")
    print(
        f"\nResSusUtil: AvgCT(susp) reduction {util_gain:+.1f}% (paper: +75%)"
    )
    normal = tables.table1()
    ratio = comparison.baseline().avg_ct_all / normal.baseline().avg_ct_all
    print(
        f"NoRes AvgCT(all): high/normal load ratio {ratio:.2f}x (paper: 1.74x)"
    )
    assert util_gain is not None and util_gain > 0
    assert ratio > 1.2, "high load must visibly inflate completion times"
    # random remains clearly inferior to utilization-aware selection
    assert (
        comparison.by_name("ResSusRand").avg_ct_suspended
        > comparison.by_name("ResSusUtil").avg_ct_suspended
    )
