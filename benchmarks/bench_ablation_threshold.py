"""Ablation: the waiting-time rescheduling threshold.

The paper fixes the threshold at 30 minutes ("about twice the expected
average waiting time in the original system") without exploring the
knob.  This bench sweeps it: too small a threshold causes excessive
restarts (and restart waste), too large converges back to
suspended-only rescheduling.
"""

from repro.experiments import ablations
from repro.metrics.report import render_table

from conftest import banner, run_once


def test_threshold_sweep(benchmark):
    comparison = run_once(benchmark, ablations.threshold_sweep)
    print(banner("Ablation: waiting-time threshold sweep (high load, RR initial)"))
    print(render_table(list(comparison.summaries), ""))
    baseline = comparison.baseline()
    moves = {
        s.policy_name: s.avg_waiting_moves for s in comparison.summaries[1:]
    }
    print("\nwaiting moves per job:", {k: round(v, 3) for k, v in moves.items()})
    # smaller thresholds must move jobs at least as often as larger ones
    ordered = [s.avg_waiting_moves for s in comparison.summaries[1:]]
    assert ordered == sorted(ordered, reverse=True)
    # the paper's 30-minute setting should beat the baseline
    thirty = comparison.by_name("ResSusWaitUtil[30m]")
    assert thirty.avg_wct < baseline.avg_wct
