"""Extension: inter-site rescheduling (the paper's future work).

The conclusion proposes "inter-site rescheduling" with "network delays
and other rescheduling associated overheads" in the simulator.  This
bench runs a two-site deployment whose burst pins down site 0 while
site 1 idles, under a 45-minute WAN transfer cost, and compares NoRes,
strictly-local rescheduling, local-first, and transfer-aware inter-site
rescheduling.

Expected shape: local-only rescheduling is trapped (the whole site is
hot), so strategies allowed to cross sites should recover most of the
waste despite paying transfer minutes.
"""

from repro.metrics.report import render_table
from repro.sites import inter_site_ablation

from conftest import banner, run_once


def test_inter_site(benchmark):
    scenario, rows = run_once(benchmark, inter_site_ablation)
    print(banner(f"Inter-site rescheduling ({len(scenario.topology.sites)} sites)"))
    print(
        f"burst site: {scenario.burst_site}, "
        f"transfer: {scenario.topology.transfer_minutes(scenario.topology.sites[0].pool_ids[0], scenario.topology.sites[1].pool_ids[0]):.0f} min, "
        f"jobs: {len(scenario.trace)}"
    )
    print(render_table(list(rows), ""))
    by_name = {row.policy_name: row for row in rows}
    no_res = by_name["NoRes"]
    local_first = by_name["LocalFirst"]
    # crossing sites must recover waste the baseline loses
    assert local_first.avg_wct < no_res.avg_wct
    # and the informed variants should not be worse than doing nothing
    assert by_name["TransferAware"].avg_wct < no_res.avg_wct
