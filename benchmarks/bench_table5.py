"""Paper Table 5: combined rescheduling, utilization-based initial.

Paper values (minutes):

==============  ========  ===========  ==========  ======  ======
Strategy        SuspRate  AvgCT(susp)  AvgCT(all)  AvgST   AvgWCT
==============  ========  ===========  ==========  ======  ======
NoRes           1.50%     5936.0       994.2       4916.0  456.6
ResSusWaitUtil  1.74%     1467.2       937.9       84.5    402.0
ResSusWaitRand  1.71%     1603.1       935.7       100.6   399.7
==============  ========  ===========  ==========  ======  ======

Shape checks: the random strategy again performs on par with the
utilization-based one — the paper's argument for fully decentralised,
job-side rescheduling decisions with no pool statistics at all.
"""

from repro.experiments import tables

from conftest import banner, run_once


def test_table5(benchmark):
    comparison = run_once(benchmark, tables.table5)
    print(banner("Table 5: +waiting-job rescheduling, high load, util-based initial"))
    print(tables.render(comparison, ""))
    util = comparison.by_name("ResSusWaitUtil")
    rand = comparison.by_name("ResSusWaitRand")
    print(
        f"\nAvgWCT: NoRes {comparison.baseline().avg_wct:.1f}, "
        f"ResSusWaitUtil {util.avg_wct:.1f}, ResSusWaitRand {rand.avg_wct:.1f} "
        f"(paper: 456.6 / 402.0 / 399.7)"
    )
    assert util.avg_wct < comparison.baseline().avg_wct
    assert rand.avg_wct < comparison.baseline().avg_wct
    assert rand.avg_wct < util.avg_wct * 2.0
