"""Paper Figure 3: components of average wasted completion time.

A stacked bar per strategy (NoRes, ResSusUtil, ResSusRand) under normal
load, decomposing AvgWCT into wait time, suspend time, and wasted time
by rescheduling.

Shape checks reproduced (the paper's reading of the figure):

* NoRes has zero rescheduling waste but carries the suspend-time
  component the others eliminate;
* ResSusUtil converts the suspend time into a small rescheduling cost
  and ends up with the smallest total among the suspended-only schemes
  ("the benefits of rescheduling clearly outweigh its costs");
* ResSusRand carries more wait time than ResSusUtil (restarts into
  loaded pools) and the worst total of the two rescheduling schemes.
"""

from repro.experiments import figures

from conftest import banner, run_once


def test_figure3(benchmark):
    figure = run_once(benchmark, figures.figure3)
    print(banner("Figure 3: average wasted completion time components"))
    print(figures.render_figure3(figure))
    bars = figure.bars()
    no_res = bars["NoRes"]
    util = bars["ResSusUtil"]
    rand = bars["ResSusRand"]
    assert no_res.resched_time == 0.0
    assert util.resched_time > 0.0
    # rescheduling eliminates (nearly all) suspend time
    assert util.suspend_time < no_res.suspend_time
    # the trade is profitable for utilization-aware selection
    assert util.total < no_res.total
    # random selection is the worse of the two rescheduling schemes
    assert rand.total > util.total
    assert rand.wait_time > util.wait_time
