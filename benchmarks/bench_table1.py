"""Paper Table 1: rescheduling of suspended jobs, normal load, RR initial.

Paper values (minutes):

=============  ========  ===========  ==========  ======  ======
Strategy       SuspRate  AvgCT(susp)  AvgCT(all)  AvgST   AvgWCT
=============  ========  ===========  ==========  ======  ======
NoRes          1.14%     2498.7       569.8       1189.1  31.0
ResSusUtil     1.56%     1265.4       560.0       82.2    20.8
ResSusRand     1.52%     7580.7       638.7       80.7    91.9
=============  ========  ===========  ==========  ======  ======

Shape checks reproduced here: ResSusUtil beats NoRes on AvgCT over
suspended jobs and on AvgWCT; ResSusRand is clearly worse than
ResSusUtil (the paper's "rescheduling may backfire" result).
"""

from repro.experiments import tables

from conftest import banner, run_once


def test_table1(benchmark):
    comparison = run_once(benchmark, tables.table1)
    print(banner("Table 1: suspended-job rescheduling, normal load, RR initial"))
    print(tables.render(comparison, ""))
    util_gain = comparison.avg_ct_suspended_reduction("ResSusUtil")
    wct_gain = comparison.avg_wct_reduction("ResSusUtil")
    rand_wct_gain = comparison.avg_wct_reduction("ResSusRand")
    print(
        f"\nResSusUtil: AvgCT(susp) reduction {util_gain:+.1f}% (paper: +49%), "
        f"AvgWCT reduction {wct_gain:+.1f}% (paper: +33%)"
    )
    print(
        f"ResSusRand: AvgWCT reduction {rand_wct_gain:+.1f}% "
        f"(paper: -196%, i.e. random selection backfires)"
    )
    assert util_gain is not None and util_gain > 0
    assert wct_gain is not None and wct_gain > 0
    # random must be clearly worse than utilization-aware selection
    assert (
        comparison.by_name("ResSusRand").avg_wct
        > comparison.by_name("ResSusUtil").avg_wct
    )
