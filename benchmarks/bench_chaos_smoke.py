"""CI smoke gate for the chaos harness and the self-healing supervisor.

The robustness contract, asserted end to end with real worker
subprocesses and real SIGKILLs:

1. **Kill-storm converges.** With slot 0 crash-looping into
   quarantine and three workers SIGKILLed in the publish window, the
   supervised fleet still publishes every cell, bit-identical to the
   serial run, with a clean lease journal (the invariant audit finds
   zero violations).
2. **Recovery machinery actually engages.** The run records restarts,
   a quarantined slot and recovered cells — a passing audit over a
   fault-free run would prove nothing.
3. **The control stays quiet.** The ``straggler`` scenario (one slow
   worker, no faults) finishes with zero restarts and zero takeovers,
   so the harness itself is not the source of the recovery noise it
   measures.

``scripts/ci.sh chaos`` runs this file plus the recovery regression
gate (``scripts/bench_record.py --chaos --check``).
"""

from __future__ import annotations

from repro.chaos import run_scenario

from conftest import banner, run_once


def summarize(report) -> str:
    return (
        f"cells: {report.cells}   wall: {report.wall_seconds:.2f}s   "
        f"recovery: {report.recovery_seconds:.2f}s   "
        f"restarts: {report.restarts}   quarantined: {report.quarantined}   "
        f"recovered: {report.cells_recovered}   "
        f"takeovers: {report.takeovers}   swept: {report.swept_leases}"
    )


def test_kill_storm_converges_with_quarantine(benchmark):
    report = run_once(benchmark, run_scenario, "kill-storm", seed=2010)

    print(banner("CI chaos smoke: kill-storm vs 4-worker supervised fleet"))
    print(summarize(report))
    for violation in report.violations:
        print(f"VIOLATION: {violation}")
    assert report.ok, report.violations
    assert report.restarts >= 3
    assert report.quarantined >= 1
    assert report.cells_recovered >= 1


def test_straggler_control_is_quiet(benchmark):
    report = run_once(benchmark, run_scenario, "straggler", seed=2010)

    print(banner("CI chaos smoke: straggler control (no faults)"))
    print(summarize(report))
    assert report.ok, report.violations
    assert report.restarts == 0
    assert report.quarantined == 0
    assert report.takeovers == 0
