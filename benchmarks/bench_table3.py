"""Paper Table 3: utilization-based initial scheduling, high load.

Paper values (minutes):

=============  ========  ===========  ==========  ======  ======
Strategy       SuspRate  AvgCT(susp)  AvgCT(all)  AvgST   AvgWCT
=============  ========  ===========  ==========  ======  ======
NoRes          1.50%     5936.0       994.2       4916.0  456.6
ResSusUtil     1.72%     1466.9       946.2       84.5    407.6
ResSusRand     1.62%     7979.9       1229.9      72.3    686.8
=============  ========  ===========  ==========  ======  ======

Shape checks: dynamic rescheduling keeps working under the
utilization-based initial scheduler (the paper's point that the
approach "is compatible with different initial schedulers"), and random
selection backfires against the NoRes baseline.
"""

from repro.experiments import tables

from conftest import banner, run_once


def test_table3(benchmark):
    comparison = run_once(benchmark, tables.table3)
    print(banner("Table 3: suspended-job rescheduling, high load, util-based initial"))
    print(tables.render(comparison, ""))
    util_gain = comparison.avg_ct_suspended_reduction("ResSusUtil")
    rand_gain = comparison.avg_ct_suspended_reduction("ResSusRand")
    print(
        f"\nResSusUtil: AvgCT(susp) reduction {util_gain:+.1f}% (paper: +75%)\n"
        f"ResSusRand: AvgCT(susp) reduction {rand_gain:+.1f}% (paper: -34%, backfires)"
    )
    assert util_gain is not None and util_gain > 0
    assert rand_gain is None or rand_gain < util_gain
