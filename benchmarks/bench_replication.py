"""Extension: multi-seed replication of the Table-1 comparison.

The paper evaluates one trace realisation; this bench reruns the
normal-load comparison over five independent synthetic workloads and
reports mean ± 95% CI per metric, separating the strategies' effects
from workload noise.  The headline orderings must hold on the means.
"""

import repro
from repro.experiments import replicate

from conftest import banner, run_once


def _run():
    return replicate(
        [repro.no_res, repro.res_sus_util, repro.res_sus_wait_util],
        seeds=(2010, 2011, 2012, 2013, 2014),
        scale=0.15,
    )


def test_replicated_table1(benchmark):
    comparison = run_once(benchmark, _run)
    print(banner("Replication: Table-1 comparison across 5 workload seeds"))
    print(comparison.render())
    estimates = comparison.estimates
    # orderings must hold on the replicated means
    assert (
        estimates["ResSusUtil"]["avg_ct_suspended"].mean
        < estimates["NoRes"]["avg_ct_suspended"].mean
    )
    assert estimates["ResSusUtil"]["avg_wct"].mean < estimates["NoRes"]["avg_wct"].mean
    assert (
        estimates["ResSusWaitUtil"]["avg_wct"].mean
        <= estimates["ResSusUtil"]["avg_wct"].mean * 1.2
    )
    # rescheduling drains suspend time in every replicate
    assert estimates["ResSusUtil"]["avg_st"].high < estimates["NoRes"]["avg_st"].mean
