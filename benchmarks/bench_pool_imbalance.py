"""Extension: per-pool imbalance behind "suspension without overload".

Section 2.3's third observation: bursts are confined to specific pools,
so "those pools are quickly overwhelmed ... during the same time
period, other pools may be barely utilized."  This bench quantifies it
on the busy week: per-pool utilization statistics, saturation episodes
and the fraction of time some pool is saturated while the cluster as a
whole sits under 60%.
"""

import repro
from repro.analysis.pools import analyze_pools
from repro.simulator.config import SimulationConfig

from conftest import banner, run_once


def _run():
    scenario = repro.busy_week()
    result = repro.run_simulation(
        scenario.trace, scenario.cluster, config=SimulationConfig(strict=False)
    )
    analysis = analyze_pools(
        result,
        pool_cores=[p.total_cores for p in scenario.cluster],
        up_to_minute=scenario.trace.horizon(),
    )
    return analysis


def test_pool_imbalance(benchmark):
    analysis = run_once(benchmark, _run)
    print(banner("Per-pool imbalance during the busy week (NoRes)"))
    hot = analysis.hottest()
    cold = analysis.coldest()
    print(
        f"hottest pool: {hot.pool_id} mean {hot.mean_utilization * 100:.0f}% "
        f"(saturated {hot.saturated_fraction * 100:.0f}% of the time)\n"
        f"coldest pool: {cold.pool_id} mean {cold.mean_utilization * 100:.0f}%\n"
        f"mean hot-cold spread: {analysis.mean_spread * 100:.0f} points\n"
        f"saturation episodes >=30 min: {len(analysis.episodes)}\n"
        f"some pool saturated while cluster <60% busy: "
        f"{analysis.hot_while_idle_fraction * 100:.0f}% of samples"
    )
    for episode in analysis.episodes[:6]:
        print(
            f"  {episode.pool_id}: {episode.start_minute:.0f}-"
            f"{episode.end_minute:.0f} min "
            f"(cluster at {episode.cluster_utilization_during * 100:.0f}%)"
        )
    # the paper's observation: saturation coexists with an idle cluster
    assert analysis.episodes, "the burst must saturate its target pools"
    assert analysis.hot_while_idle_fraction > 0.02
    assert all(
        e.cluster_utilization_during < 0.8 for e in analysis.episodes
    ), "pool saturation should not require cluster-wide overload"
