"""CI smoke gate: the invariants the execution backend promises.

1. **Parallel == serial.** Table 1 run on a 2-process pool must be
   bit-identical to the serial run — per-cell seeds derive from cell
   identity, never from worker order.
2. **Warm cache >= 5x cold.** A second invocation against a populated
   result cache must be at least 5x faster than the cold run (measured
   ~14x at smoke scale; 5 leaves generous headroom for noisy CI boxes).
3. **Telemetry is read-only.** The same simulation with a metrics
   registry and profiler attached must return a bit-identical result,
   while the registry actually fills with event counts.

CI runs this file at ``REPRO_SCALE=0.08`` (see ``scripts/ci.sh smoke``)
so the whole gate finishes in seconds; it holds at any scale.
"""

from __future__ import annotations

import time

import repro
from repro.experiments import presets, tables
from repro.telemetry import Instrumentation, MetricsRegistry, to_prometheus
from repro.workload.scenarios import busy_week

from conftest import banner, run_once

MIN_CACHE_SPEEDUP = 5.0


def test_parallel_matches_serial(benchmark):
    serial = tables.table1(workers=1, use_cache=False)
    parallel = run_once(benchmark, tables.table1, workers=2, use_cache=False)
    print(banner("CI smoke: Table 1, serial vs 2-worker pool"))
    print(tables.render(parallel, ""))
    assert parallel.summaries == serial.summaries, (
        "parallel Table 1 diverged from serial — per-cell seeding broke"
    )
    assert [c.seed for c in parallel.cells] == [c.seed for c in serial.cells]


def test_cached_rerun_is_faster(benchmark, tmp_path):
    cold_start = time.perf_counter()
    cold = tables.table1(workers=1, cache_dir=tmp_path)
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    warm = tables.table1(workers=1, cache_dir=tmp_path)
    warm_seconds = time.perf_counter() - warm_start

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print(banner("CI smoke: Table 1, cold vs cached"))
    print(
        f"cold: {cold_seconds:.3f}s   warm: {warm_seconds:.3f}s   "
        f"speedup: {speedup:.1f}x (required >= {MIN_CACHE_SPEEDUP:.0f}x)"
    )
    assert warm.summaries == cold.summaries
    assert all(cell.from_cache for cell in warm.cells)
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cached rerun only {speedup:.1f}x faster than cold "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
    )

    # a third (still warm) pass feeds the benchmark table
    run_once(benchmark, tables.table1, workers=1, cache_dir=tmp_path)


def test_telemetry_is_read_only(benchmark):
    scenario = busy_week(presets.table_scale(), presets.seed())
    plain = repro.simulate(scenario, "ResSusUtil")
    registry = MetricsRegistry()
    observed = run_once(
        benchmark,
        repro.simulate,
        scenario,
        "ResSusUtil",
        instrumentation=Instrumentation(metrics=registry, profile=True),
    )
    assert observed.records == plain.records, (
        "telemetry perturbed the simulation — records diverged"
    )
    assert observed.samples == plain.samples
    events = registry.get("repro_sim_events_total")
    total = sum(child.value for _, child in events.series())
    print(banner("CI smoke: telemetry on vs off"))
    print(f"records: {len(plain.records)}, events counted: {total:.0f}")
    assert total > 0, "metrics registry stayed empty"
    assert "repro_sim_events_total" in to_prometheus(registry)
