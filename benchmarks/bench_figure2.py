"""Paper Figure 2: CDF of job suspension time.

Computed from a long-horizon NoRes run of the synthetic year-like
trace.  Paper headline numbers (minutes, from the real trace): median
437, mean 905, 20% above 1100, with a long tail.

Shape checks reproduced: hundreds-of-minutes median, mean well above
the median (right skew), a meaningful fraction of suspended jobs above
the 1,100-minute mark, and a maximum far beyond the mean (long tail).
"""

from repro.experiments import figures

from conftest import banner, run_once


def test_figure2(benchmark):
    figure = run_once(benchmark, figures.figure2)
    print(banner("Figure 2: CDF of job suspension time"))
    print(figure.render())
    analysis = figure.analysis
    print(
        f"\npaper: median 437, mean 905, p80 1100 | "
        f"measured: median {analysis.median_minutes:.0f}, "
        f"mean {analysis.mean_minutes:.0f}, p80 {analysis.p80_minutes:.0f}"
    )
    assert analysis.suspended_jobs > 20, "needs a meaningful sample of suspensions"
    # right-skewed, long-tailed distribution like the paper's
    assert analysis.mean_minutes > analysis.median_minutes
    assert analysis.max_minutes > 2.0 * analysis.mean_minutes
    assert analysis.median_minutes > 30.0
