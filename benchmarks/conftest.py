"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's tables or
figures and prints the same rows/series the paper reports, so a
``pytest benchmarks/ --benchmark-only`` run doubles as the full
reproduction log.  Scales are controlled by the ``REPRO_SCALE`` /
``REPRO_YEAR_SCALE`` / ``REPRO_YEAR_HORIZON`` / ``REPRO_SEED``
environment variables (see :mod:`repro.experiments.presets`).

pytest-benchmark is configured for single-shot measurements: each
experiment is a multi-second simulation campaign, not a microbenchmark.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one round and one iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def banner(title: str) -> str:
    """A separator making each experiment easy to find in the log."""
    rule = "=" * max(len(title), 60)
    return f"\n{rule}\n{title}\n{rule}"
