"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's tables or
figures and prints the same rows/series the paper reports, so a
``pytest benchmarks/ --benchmark-only`` run doubles as the full
reproduction log.  Scales are controlled by the ``REPRO_SCALE`` /
``REPRO_YEAR_SCALE`` / ``REPRO_YEAR_HORIZON`` / ``REPRO_SEED``
environment variables (see :mod:`repro.experiments.presets`).

Execution is controlled the same way: ``REPRO_WORKERS`` selects the
process-pool width for every table/figure entry point, and
``REPRO_CACHE_DIR`` points at an on-disk result cache so repeated
benchmark runs (CI re-runs, bisects) skip identical simulation cells;
``REPRO_NO_CACHE=1`` force-disables the cache even when a directory is
configured.  ``benchmarks/bench_ci_smoke.py`` asserts the two
invariants CI relies on: parallel == serial bit-for-bit, and a warm
cache beats a cold run by a wide margin.

pytest-benchmark is configured for single-shot measurements: each
experiment is a multi-second simulation campaign, not a microbenchmark.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one round and one iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def banner(title: str) -> str:
    """A separator making each experiment easy to find in the log."""
    rule = "=" * max(len(title), 60)
    return f"\n{rule}\n{title}\n{rule}"
