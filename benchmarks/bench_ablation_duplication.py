"""Ablation: restart-based rescheduling versus job duplication.

The paper's conclusion lists "job duplication techniques" as future
work.  Duplication keeps the suspended attempt alive and races a fresh
copy at the alternate pool, so a bad alternate-pool choice can never
extend the job's completion time — at the cost of running two copies.
"""

from repro.experiments import ablations
from repro.metrics.report import render_table

from conftest import banner, run_once


def test_duplication_ablation(benchmark):
    comparison = run_once(benchmark, ablations.duplication_ablation)
    print(banner("Ablation: restart vs duplication (high load, RR initial)"))
    print(render_table(list(comparison.summaries), ""))
    no_res = comparison.baseline()
    dup = comparison.by_name("DupSusUtil")
    print(
        f"\nAvgCT(susp): NoRes {no_res.avg_ct_suspended:.0f}, "
        f"DupSusUtil {dup.avg_ct_suspended:.0f}"
    )
    # racing a duplicate can only help suspended jobs' completion time
    assert dup.avg_ct_suspended <= no_res.avg_ct_suspended * 1.05
