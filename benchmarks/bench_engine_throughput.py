"""Microbenchmark: raw simulator throughput.

Not a paper experiment — this tracks the engine's own performance
(simulated jobs per wall-clock second on the busy-week workload) so
regressions in the hot dispatch/fill paths are visible.
Unlike the experiment benches, this one uses several rounds: the run is
short and timing noise matters.
"""

import repro
from repro.simulator.config import SimulationConfig

from conftest import banner


def test_engine_throughput(benchmark):
    scenario = repro.busy_week(scale=0.08)

    def run():
        return repro.run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=repro.res_sus_wait_util(),
            config=SimulationConfig(strict=False, record_samples=False),
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    jobs = len(result.records)
    print(banner("Engine throughput"))
    print(f"simulated {jobs} jobs (ResSusWaitUtil, busy week at scale 0.08)")
    assert jobs == len(scenario.trace)
