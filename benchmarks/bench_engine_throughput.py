"""Microbenchmark: raw simulator throughput over the tracked matrix.

Not a paper experiment — this tracks the engine's own performance
(simulated jobs per wall-clock second) so regressions in the hot
dispatch/fill paths are visible.  The workload matrix is shared with
``scripts/bench_record.py`` (see :mod:`repro.benchtrack`), which
appends the same measurements to the committed ``BENCH_engine.json``
trajectory; this bench covers the reduced-scale cells so a plain
``make bench`` stays quick.  Unlike the experiment benches, each cell
runs several rounds: the runs are short and timing noise matters.
"""

import pytest

from repro import benchtrack

from conftest import banner


@pytest.mark.parametrize(
    "spec", benchtrack.QUICK_WORKLOADS, ids=lambda spec: spec.name
)
def test_engine_throughput(benchmark, spec):
    measured = {}

    def run():
        result = benchtrack.measure_workload(spec, rounds=3)
        measured["result"] = result
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = measured["result"]
    print(banner(f"Engine throughput: {spec.name}"))
    print(
        f"{result.jobs} jobs ({spec.policy}, {spec.scenario} at scale "
        f"{spec.scale}{', churn' if spec.faults else ''}) in "
        f"{result.best_wall_seconds:.2f}s best-of-{result.rounds} = "
        f"{result.jobs_per_second:,.0f} jobs/sec"
    )
    print(f"result digest: {result.result_digest}")
    assert result.jobs > 0
    assert result.jobs_per_second > 0
