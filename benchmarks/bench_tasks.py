"""Extension: task-level impact of rescheduling (paper Section 2.2).

"Typically, 100% or a high percentage of jobs associated with a
particular task needs to complete before the task result ... can be
useful.  Often when one or more of those low priority jobs cannot
complete in a timely fashion, engineers lose productivity."

This bench quantifies that motivation: task completion (max over member
jobs) under NoRes vs ResSusWaitUtil on the high-load busy week.  The
expected shape is that rescheduling helps *tasks* at least as much as
it helps individual jobs, because it specifically rescues the
suspended stragglers that gate whole tasks.
"""

import repro
from repro.analysis.tasks import analyze_tasks
from repro.simulator.config import SimulationConfig

from conftest import banner, run_once


def _run():
    scenario = repro.high_load()
    out = {}
    for policy in (repro.no_res(), repro.res_sus_wait_util()):
        result = repro.run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            config=SimulationConfig(strict=False, record_samples=False),
        )
        out[policy.name] = (repro.summarize(result), analyze_tasks(result))
    return out


def test_task_level(benchmark):
    out = run_once(benchmark, _run)
    print(banner("Task-level completion (Section 2.2 motivation)"))
    header = (
        f"{'Strategy':<16} {'tasks':>6} {'task CT':>9} {'member CT':>10} "
        f"{'amplif.':>8} {'gated by susp.':>15}"
    )
    print(header)
    print("-" * len(header))
    for name, (summary, tasks) in out.items():
        print(
            f"{name:<16} {len(tasks):>6} {tasks.avg_task_completion:>9.1f} "
            f"{tasks.avg_member_job_completion:>10.1f} {tasks.amplification:>8.2f} "
            f"{tasks.tasks_delayed_by_suspension * 100:>14.1f}%"
        )
    base_summary, base_tasks = out["NoRes"]
    res_summary, res_tasks = out["ResSusWaitUtil"]
    task_gain = 1 - res_tasks.avg_task_completion / base_tasks.avg_task_completion
    job_gain = 1 - res_summary.avg_ct_all / base_summary.avg_ct_all
    print(
        f"\ntask-level completion gain {task_gain * 100:+.1f}% vs "
        f"job-level gain {job_gain * 100:+.1f}%"
    )
    assert res_tasks.avg_task_completion < base_tasks.avg_task_completion
    # whole tasks amplify the cost of stragglers
    assert base_tasks.amplification > 1.0
