"""The in-text high-suspension experiment (paper Section 3.2.1).

"To investigate the performance of rescheduling under high suspend
rate, we created a job trace that result in a suspend rate of 14%.
Here, there is a more significant reduction of 7% in AvgCT for all
jobs, and an equally high reduction of 44% in AvgCT of suspended jobs."

Shape check reproduced: the suspend rate is several times the
busy-week baseline, and the all-jobs AvgCT reduction from ResSusUtil is
larger than under Table 1's ~1% suspend rate.  (Our synthetic trace
tops out around a 4-6% suspend rate rather than 14%: in our engine a
saturated pool queues newly arriving low-priority jobs, and queued jobs
cannot be preempted, which self-limits the suspended fraction — see
EXPERIMENTS.md.)
"""

from repro.experiments import tables

from conftest import banner, run_once


def test_high_suspension(benchmark):
    comparison = run_once(benchmark, tables.high_suspension_experiment)
    print(banner("High-suspension scenario (Section 3.2.1, in text)"))
    print(tables.render(comparison, ""))
    all_gain = comparison.avg_ct_all_reduction("ResSusUtil")
    susp_gain = comparison.avg_ct_suspended_reduction("ResSusUtil")
    baseline_rate = comparison.baseline().suspend_rate
    print(
        f"\nNoRes suspend rate: {baseline_rate * 100:.1f}% (paper: 14%)\n"
        f"ResSusUtil: AvgCT(all) reduction {all_gain:+.1f}% (paper: +7%), "
        f"AvgCT(susp) reduction {susp_gain:+.1f}% (paper: +44%)"
    )
    table1 = tables.table1()
    t1_all_gain = table1.avg_ct_all_reduction("ResSusUtil")
    print(
        f"For comparison, Table 1's AvgCT(all) reduction at ~1% suspend "
        f"rate: {t1_all_gain:+.1f}% — higher suspension rates amplify the "
        f"all-jobs benefit, the paper's point."
    )
    assert baseline_rate > table1.baseline().suspend_rate
    assert all_gain is not None and all_gain > 0
