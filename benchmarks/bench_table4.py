"""Paper Table 4: adding waiting-job rescheduling, RR initial, high load.

Waiting jobs stuck in a pool queue for more than 30 minutes are
rescheduled like suspended jobs.  Paper values (minutes):

==============  ========  ===========  ==========  ======  ======
Strategy        SuspRate  AvgCT(susp)  AvgCT(all)  AvgST   AvgWCT
==============  ========  ===========  ==========  ======  ======
NoRes           1.26%     5846.1       988.7       4402.4  450.1
ResSusWaitUtil  1.46%     1224.3       951.4       72.7    414.2
ResSusWaitRand  1.50%     1417.0       954.7       62.3    417.6
==============  ========  ===========  ==========  ======  ======

Shape checks: the combined scheme beats the suspended-only scheme, and
— the paper's headline surprise — random selection now performs almost
as well as utilization-based selection, because a badly-placed job
simply moves again after the next threshold.
"""

from repro.experiments import tables

from conftest import banner, run_once


def test_table4(benchmark):
    comparison = run_once(benchmark, tables.table4)
    print(banner("Table 4: +waiting-job rescheduling, high load, RR initial"))
    print(tables.render(comparison, ""))
    util_gain = comparison.avg_ct_suspended_reduction("ResSusWaitUtil")
    wct_gain = comparison.avg_wct_reduction("ResSusWaitUtil")
    print(
        f"\nResSusWaitUtil: AvgCT(susp) reduction {util_gain:+.1f}% (paper: +79%), "
        f"AvgWCT reduction {wct_gain:+.1f}% (paper: +8%)"
    )
    rand = comparison.by_name("ResSusWaitRand")
    util = comparison.by_name("ResSusWaitUtil")
    gap = (rand.avg_wct - util.avg_wct) / util.avg_wct * 100.0
    print(
        f"ResSusWaitRand vs ResSusWaitUtil AvgWCT gap: {gap:+.1f}% "
        f"(paper: +0.8%; random works once jobs get second chances)"
    )
    assert util_gain is not None and util_gain > 0
    assert wct_gain is not None and wct_gain > 0
    # with second chances, random must be within ~2x of utilization-based
    # rather than catastrophically worse as in Tables 1-3
    assert rand.avg_wct < util.avg_wct * 2.0
